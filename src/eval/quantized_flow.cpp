#include "eval/quantized_flow.hpp"

#include <algorithm>

#include "eval/layer_selection.hpp"
#include "eval/probes.hpp"
#include "nn/metrics.hpp"

namespace nocw::eval {

namespace {
constexpr std::uint64_t kPerTensorMetadataBits = 64;  // scale + zero_point
}

QuantizedDeltaEvaluator::QuantizedDeltaEvaluator(
    nn::Model& model, const QuantizedEvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  const nn::Tensor probes = make_probes(
      cfg_.probes, model.input_size, model.input_channels, cfg_.probe_seed);
  prepare(probes);
}

QuantizedDeltaEvaluator::QuantizedDeltaEvaluator(
    nn::Model& model, const nn::Dataset& test, const QuantizedEvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  labels_ = test.labels;
  prepare(test.images);
}

void QuantizedDeltaEvaluator::prepare(const nn::Tensor& inputs) {
  selected_node_ = select_layer(*model_);
  selected_name_ = model_->graph.layer(selected_node_).name();

  // Float32 reference outputs before any quantization.
  fp32_outputs_ = model_->graph.forward(inputs);

  // Quantize every kernel; biases and BatchNorm statistics stay float32
  // (TFLite hybrid). Keep the selected layer's codes for the δ sweep, and
  // install dequantized weights everywhere (the inference-time view).
  model_fp32_bits_ =
      static_cast<std::uint64_t>(model_->graph.total_params()) * 32;
  std::uint64_t qt_bits = 0;
  std::uint64_t non_kernel_params = model_->graph.total_params();
  for (int idx : model_->graph.parameterized_nodes()) {
    nn::Layer& layer = model_->graph.layer(idx);
    // BatchNorm "kernels" (gamma) are statistics, not weights: keep float32.
    if (layer.type() == nn::LayerType::BatchNorm) continue;
    auto kernel = layer.kernel();
    non_kernel_params -= kernel.size();
    const quant::QuantizedTensor qt = quant::quantize_tensor(kernel);
    const std::vector<float> deq = qt.dequantize();
    std::copy(deq.begin(), deq.end(), kernel.begin());
    const std::uint64_t bits =
        static_cast<std::uint64_t>(qt.data.size()) * 8 +
        kPerTensorMetadataBits;
    qt_bits += bits;
    if (idx == selected_node_) {
      selected_qt_ = qt;
      selected_qt_bits_ = bits;
      original_weights_.assign(deq.begin(), deq.end());
    }
  }
  qt_bits += non_kernel_params * 32;  // biases, BN params stay float32
  model_qt_bits_ = qt_bits;

  // Quantized model outputs + the captured input of the selected layer.
  auto [outputs, captured] =
      model_->graph.forward_capturing(inputs, selected_node_);
  captured_ = std::move(captured);

  baseline_.weighted_cr = static_cast<double>(model_fp32_bits_) /
                          static_cast<double>(model_qt_bits_);
  baseline_.accuracy =
      labels_.empty()
          ? nn::mean_topk_agreement(fp32_outputs_, outputs, cfg_.topk)
          : nn::topk_accuracy(outputs, labels_, cfg_.topk);
}

QuantizedDeltaEvaluator::~QuantizedDeltaEvaluator() = default;

QuantizedDeltaPoint QuantizedDeltaEvaluator::evaluate(double delta_percent) {
  QuantizedDeltaPoint point;
  point.delta_percent = delta_percent;

  quant::QuantizedCodecConfig qcfg;
  qcfg.delta_percent = delta_percent;
  qcfg.coef_bits = cfg_.coef_bits;
  qcfg.length_bits = cfg_.length_bits;
  const core::CompressedLayer compressed =
      quant::compress_quantized(selected_qt_, qcfg);

  // Whole-model bits with the selected layer's int8 stream replaced by the
  // compressed stream (its metadata still needed for dequantization).
  const std::uint64_t stacked_bits = model_qt_bits_ - selected_qt_bits_ +
                                     compressed.compressed_bits() +
                                     kPerTensorMetadataBits;
  point.weighted_cr = static_cast<double>(model_fp32_bits_) /
                      static_cast<double>(stacked_bits);

  // Reconstruct codes -> dequantize -> install -> tail replay -> restore.
  const quant::QuantizedTensor rec =
      quant::decompress_quantized(compressed, selected_qt_.params);
  const std::vector<float> deq = rec.dequantize();
  auto kernel = model_->graph.layer(selected_node_).kernel();
  std::copy(deq.begin(), deq.end(), kernel.begin());
  const nn::Tensor outputs =
      model_->graph.forward_tail(captured_, selected_node_);
  std::copy(original_weights_.begin(), original_weights_.end(),
            kernel.begin());

  point.accuracy =
      labels_.empty()
          ? nn::mean_topk_agreement(fp32_outputs_, outputs, cfg_.topk)
          : nn::topk_accuracy(outputs, labels_, cfg_.topk);
  return point;
}

}  // namespace nocw::eval
