#include "eval/multi_layer.hpp"

#include <algorithm>
#include <map>

#include "core/codec.hpp"
#include "eval/probes.hpp"
#include "nn/metrics.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {

accel::CompressionPlan MultiLayerResult::to_accel_plan() const {
  accel::CompressionPlan out;
  for (const auto& e : plan) {
    out[e.layer] = accel::LayerCompression{e.compressed_bits, e.weight_count};
  }
  return out;
}

namespace {

struct LayerState {
  int node = -1;
  std::vector<float> original;
  int step = -1;  ///< index into delta_steps; -1 = uncompressed
};

}  // namespace

MultiLayerResult optimize_multi_layer(nn::Model& model,
                                      const nn::Dataset* test,
                                      const MultiLayerConfig& cfg) {
  const nn::Tensor inputs =
      test ? test->images
           : make_probes(cfg.probes, model.input_size, model.input_channels,
                         cfg.probe_seed);
  const nn::Tensor baseline = model.graph.forward(inputs);

  auto accuracy_now = [&]() {
    const nn::Tensor out = model.graph.forward(inputs);
    return test ? nn::topk_accuracy(out, test->labels, cfg.topk)
                : nn::topk_retention(baseline, out, cfg.topk);
  };

  MultiLayerResult result;
  result.baseline_accuracy =
      test ? nn::topk_accuracy(baseline, test->labels, cfg.topk) : 1.0;

  std::vector<LayerState> layers;
  for (int idx : model.graph.parameterized_nodes()) {
    nn::Layer& layer = model.graph.layer(idx);
    if (layer.type() == nn::LayerType::BatchNorm) continue;  // statistics
    LayerState st;
    st.node = idx;
    const auto k = layer.kernel();
    st.original.assign(k.begin(), k.end());
    layers.push_back(std::move(st));
  }

  // Memoized compression of layer i at ladder step s (from ORIGINAL weights).
  std::map<std::pair<int, int>, core::CompressedLayer> cache;
  auto compressed_at = [&](std::size_t li,
                           int step) -> const core::CompressedLayer& {
    const auto key = std::make_pair(static_cast<int>(li), step);
    auto it = cache.find(key);
    if (it == cache.end()) {
      core::CodecConfig ccfg;
      ccfg.delta_percent = cfg.delta_steps[static_cast<std::size_t>(step)];
      it = cache.emplace(key, core::compress(layers[li].original, ccfg))
               .first;
    }
    return it->second;
  };

  auto install = [&](std::size_t li, int step) {
    auto kernel = model.graph.layer(layers[li].node).kernel();
    if (step < 0) {
      std::copy(layers[li].original.begin(), layers[li].original.end(),
                kernel.begin());
    } else {
      core::decompress(compressed_at(li, step), kernel);
    }
  };

  auto bits_of = [&](std::size_t li, int step) -> std::uint64_t {
    if (step < 0) {
      return static_cast<std::uint64_t>(layers[li].original.size()) * 32;
    }
    return compressed_at(li, step).compressed_bits();
  };

  // Layers whose next bump already failed the constraint are frozen until
  // some other move succeeds (a successful move changes the context, so
  // frozen layers thaw then).
  std::vector<bool> frozen(layers.size(), false);
  for (int round = 0; round < cfg.max_rounds; ++round) {
    // Compress this round's candidate ladder steps concurrently before the
    // serial greedy walk consults them. compress() is a pure function of
    // (weights, δ), so the cache contents — and therefore the whole greedy
    // trajectory — are identical for any thread count; only the cache fill
    // order is fixed (ascending li) to keep iteration deterministic.
    std::vector<std::pair<int, int>> missing;
    for (std::size_t li = 0; li < layers.size(); ++li) {
      if (frozen[li]) continue;
      const int next = layers[li].step + 1;
      if (next >= static_cast<int>(cfg.delta_steps.size())) continue;
      if (cache.find(std::make_pair(static_cast<int>(li), next)) ==
          cache.end()) {
        missing.emplace_back(static_cast<int>(li), next);
      }
    }
    if (missing.size() > 1 && global_thread_count() > 1) {
      std::vector<core::CompressedLayer> fresh(missing.size());
      global_pool().parallel_for(
          0, missing.size(), /*grain=*/1,
          [&](std::size_t i0, std::size_t i1, unsigned /*lane*/) {
            for (std::size_t i = i0; i < i1; ++i) {
              core::CodecConfig ccfg;
              ccfg.delta_percent = cfg.delta_steps[static_cast<std::size_t>(
                  missing[i].second)];
              fresh[i] = core::compress(
                  layers[static_cast<std::size_t>(missing[i].first)].original,
                  ccfg);
            }
          });
      for (std::size_t i = 0; i < missing.size(); ++i) {
        cache.emplace(missing[i], std::move(fresh[i]));
      }
    }

    // Rank candidate bumps by bits saved, then try them in order and commit
    // the first one that keeps the accuracy constraint. This needs only a
    // couple of forward passes per round instead of one per layer.
    std::vector<std::pair<std::uint64_t, std::size_t>> candidates;
    for (std::size_t li = 0; li < layers.size(); ++li) {
      if (frozen[li]) continue;
      const int next = layers[li].step + 1;
      if (next >= static_cast<int>(cfg.delta_steps.size())) continue;
      const std::uint64_t saved =
          bits_of(li, layers[li].step) - bits_of(li, next);
      if (saved > 0) candidates.emplace_back(saved, li);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    bool committed = false;
    for (const auto& [saved, li] : candidates) {
      const int next = layers[li].step + 1;
      install(li, next);
      const double acc = accuracy_now();
      if (acc + 1e-12 >= cfg.min_accuracy) {
        layers[li].step = next;
        result.accuracy = acc;
        committed = true;
        std::fill(frozen.begin(), frozen.end(), false);
        break;
      }
      install(li, layers[li].step);  // roll back and freeze
      frozen[li] = true;
    }
    if (!committed) break;
  }

  // Collect the plan and whole-model ratio.
  std::uint64_t before_bits = 0;
  std::uint64_t after_bits = 0;
  for (int idx : model.graph.parameterized_nodes()) {
    before_bits +=
        static_cast<std::uint64_t>(model.graph.layer(idx).param_count()) * 32;
  }
  after_bits = before_bits;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    if (layers[li].step < 0) continue;
    const auto& comp = compressed_at(li, layers[li].step);
    LayerPlanEntry e;
    e.layer = model.graph.layer(layers[li].node).name();
    e.delta_percent =
        cfg.delta_steps[static_cast<std::size_t>(layers[li].step)];
    e.cr = comp.compression_ratio();
    e.compressed_bits = comp.compressed_bits();
    e.weight_count = comp.original_count;
    after_bits -= static_cast<std::uint64_t>(e.weight_count) * 32;
    after_bits += e.compressed_bits;
    result.plan.push_back(std::move(e));
  }
  result.weighted_cr =
      static_cast<double>(before_bits) / static_cast<double>(after_bits);
  if (result.plan.empty()) result.accuracy = result.baseline_accuracy;

  // Restore original weights.
  for (std::size_t li = 0; li < layers.size(); ++li) install(li, -1);
  return result;
}

}  // namespace nocw::eval
