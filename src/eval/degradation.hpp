// Graceful-degradation evaluation: survival curves under permanent router
// faults with fault-aware routing and PE failover (DESIGN.md §13).
//
// The paper's accelerator concentrates an inference on a 4x4 mesh whose 16
// routers are all endpoints (4 corner memory interfaces, 12 PEs), so any
// permanent router outage removes compute or bandwidth as well as a routing
// waypoint. This sweep kills 0..k routers (seeded, deterministic placement),
// turns on west-first fault-aware routing with endpoint failover, and runs
// the full LeNet-5 inference at each compression tolerance δ — recording
// whether the run completes at all, and at what latency/energy/accuracy
// cost relative to the healthy mesh. Failover redistributes a dead
// endpoint's traffic share and compute throughput across the survivors, so
// accuracy survives intact whenever the run completes; the degradation
// shows up as the latency/energy ratios the curves record.
//
// Determinism: fault placement is a pure function of (fault_seed, count),
// the accelerator simulation is bit-identical for any NOCW_THREADS, and the
// δ evaluation uses the deterministic parallel evaluator — the whole sweep
// diffs clean across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "noc/config.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace nocw::eval {

struct DegradationConfig {
  /// Permanent router outages swept 0..max (inclusive). Placement is the
  /// FaultModel's seeded hash walk, so fault count f+1 is a superset-style
  /// re-walk, not "f plus one more".
  int max_router_faults = 3;
  /// Codec tolerance points (δ as % of the weight range, paper convention).
  std::vector<double> delta_percents{0.0, 8.0};
  /// Seed for the permanent fault placement.
  std::uint64_t fault_seed = 0xF417;
  /// Base NoC configuration. The sweep forces west-first fault-aware
  /// routing on every arm (the zero-fault arm is bit-identical to DOR by
  /// the turn-model construction, so the f=0 row doubles as the healthy
  /// baseline).
  noc::NocConfig noc;
  /// Accelerator knobs mirrored into every arm.
  std::uint64_t noc_window_flits = 24000;
  std::uint64_t max_phase_cycles = 8'000'000;
  /// Top-k for accuracy against the dataset labels (1 for LeNet-5).
  int topk = 1;
};

/// One (router faults, δ) operating point.
struct DegradationPoint {
  int router_faults = 0;
  double delta_percent = 0.0;
  /// Surviving endpoints after failover (16-node mesh: 4 MIs, 12 PEs).
  int live_mis = 0;
  int live_pes = 0;
  /// True when the inference drained without a deadlock/timeout. Points
  /// that could not complete (e.g. no surviving MI) report zero cost.
  bool completed = false;
  /// Top-k accuracy of the δ-compressed model. Failover preserves the
  /// computation, so when `completed` this equals the healthy-mesh value.
  double accuracy = 0.0;
  units::FracCycles latency_cycles;
  units::Joules energy_j;
  /// Cost relative to the zero-fault arm at the same δ (1.0 = no penalty;
  /// 0.0 when either point did not complete).
  double latency_vs_healthy = 0.0;
  double energy_vs_healthy = 0.0;
};

struct DegradationResult {
  std::string selected_layer;
  double baseline_accuracy = 0.0;  ///< uncompressed, healthy mesh
  std::vector<DegradationPoint> points;  ///< faults outer, δ inner
};

/// Run the sweep on `model` against `test`. The model is read, never left
/// mutated. Results are bit-identical across runs and thread counts.
DegradationResult run_degradation_sweep(nn::Model& model,
                                        const nn::Dataset& test,
                                        const DegradationConfig& cfg);

/// Publish a finished sweep into a counter registry (prefix.*): point and
/// completion totals as counters, baseline accuracy as a gauge, and the
/// per-point latency/energy degradation ratios as histograms.
void annotate_registry(obs::Registry& reg, const DegradationResult& result,
                       std::string_view prefix = "degradation");

}  // namespace nocw::eval
