#include "eval/fault_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "eval/layer_selection.hpp"
#include "nn/metrics.hpp"
#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {

namespace {

/// A corrupted stream can decode to arbitrary bit patterns; NaN/Inf weights
/// would poison the whole forward pass instead of modelling a localized
/// error, so they land as zeros (what a hardware decoder's saturation or a
/// detected-parity flush would produce).
void sanitize(std::span<float> w) {
  for (float& x : w) {
    if (!std::isfinite(x)) x = 0.0F;
  }
}

/// NoC cost of streaming cfg.noc_flits of weights MI→PE at the given link
/// BER, with or without CRC protection. Deterministic in cfg.fault_seed.
struct NocCost {
  units::FracCycles cycles;
  units::Joules energy_j;
  std::uint64_t crc_failures = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_dropped = 0;
  double drop_fraction = 0.0;  ///< packets lost / packets offered
};

NocCost noc_cost(const FaultSweepConfig& cfg, double ber, bool protect) {
  noc::NocConfig nc = cfg.noc;
  nc.fault.bit_flip_probability = ber;
  nc.fault.seed = cfg.fault_seed;
  nc.protection.crc = protect;
  noc::Network net(nc);

  // Weight streaming is a pure scatter phase; phase_traffic is the shared
  // MI-share compilation the accelerator uses.
  net.add_packets(noc::phase_traffic(nc, units::Flits{cfg.noc_flits},
                                     units::Flits{0}, cfg.packet_flits));
  const std::uint64_t cycles = net.run_until_drained(cfg.max_noc_cycles);
  const noc::NocStats& st = net.stats();

  NocCost out;
  out.cycles = units::FracCycles{static_cast<double>(cycles)};
  out.crc_failures = st.crc_failures;
  out.retransmissions = st.retransmissions;
  out.packets_dropped = st.packets_dropped;
  const std::uint64_t offered = st.packets_delivered + st.packets_dropped;
  if (protect && offered > 0) {
    out.drop_fraction = static_cast<double>(st.packets_dropped) /
                        static_cast<double>(offered);
  }

  power::EventCounts ev;
  ev.router_traversals = st.router_traversals;
  ev.link_traversals = st.link_traversals;
  ev.buffer_writes = st.buffer_writes;
  ev.buffer_reads = st.buffer_reads;
  ev.crc_flit_events = st.crc_flit_events;
  const units::Seconds seconds = units::seconds_at(out.cycles, nc.clock_ghz);
  const power::PlatformShape shape{nc.node_count(),
                                   static_cast<int>(nc.pe_nodes().size())};
  out.energy_j = power::annotate(ev, seconds, cfg.energy, shape).total();
  return out;
}

/// Fixed per-sweep state shared by every point: the selected layer, its
/// original weights, and the cached activations feeding it (the expensive
/// network prefix runs exactly once, as in DeltaEvaluator).
struct SweepContext {
  const FaultSweepConfig* cfg = nullptr;
  int selected = -1;
  std::vector<float> original;
  nn::Tensor captured;
  std::vector<int> labels;

  /// Install `weights` into the selected layer of `g`, replay the tail,
  /// restore, and score top-k accuracy. `weights` must match the kernel.
  [[nodiscard]] double measure(nn::Graph& g,
                               std::span<const float> weights) const {
    auto kernel = g.layer(selected).kernel();
    NOCW_CHECK_EQ(weights.size(), kernel.size());
    std::copy(weights.begin(), weights.end(), kernel.begin());
    const nn::Tensor out = g.forward_tail(captured, selected);
    std::copy(original.begin(), original.end(), kernel.begin());
    return nn::topk_accuracy(out, labels, cfg->topk);
  }
};

/// Accuracy of a maximally corrupted stream: every weight lost.
double measure_all_zero(const SweepContext& ctx, nn::Graph& g) {
  const std::vector<float> zeros(ctx.original.size(), 0.0F);
  return ctx.measure(g, zeros);
}

FaultPoint eval_point(const SweepContext& ctx, nn::Graph& g, std::size_t bi,
                      std::size_t di, const NocCost& unprot,
                      const NocCost& prot) {
  const FaultSweepConfig& cfg = *ctx.cfg;
  FaultPoint point;
  point.bit_error_rate = cfg.bit_error_rates[bi];
  point.delta_percent = cfg.delta_percents[di];
  point.unprotected_cycles = unprot.cycles;
  point.protected_cycles = prot.cycles;
  point.unprotected_energy_j = unprot.energy_j;
  point.protected_energy_j = prot.energy_j;
  point.crc_failures = prot.crc_failures;
  point.retransmissions = prot.retransmissions;
  point.packets_dropped = prot.packets_dropped;

  core::CodecConfig codec = cfg.codec;
  codec.delta_percent = point.delta_percent;
  codec.segment_checksum = true;  // corruption must be detectable
  const core::CompressedLayer clean = core::compress(ctx.original, codec);
  std::vector<float> w_clean = core::decompress(clean);
  point.accuracy_clean = ctx.measure(g, w_clean);
  const std::vector<std::uint8_t> clean_bytes = core::serialize(clean);

  const std::size_t nd = cfg.delta_percents.size();
  const auto trials = static_cast<std::size_t>(std::max(cfg.trials, 1));
  double acc_c = 0.0;
  double acc_u = 0.0;
  double acc_p = 0.0;
  double seg_frac = 0.0;
  std::vector<std::uint8_t> bytes;
  for (std::size_t t = 0; t < trials; ++t) {
    // Three independent seed lanes per trial (compressed stream,
    // uncompressed stream, dropped-segment selection), all derived from the
    // flat trial index so the sweep is order- and thread-independent.
    const std::uint64_t base = ((bi * nd + di) * trials + t) * 3;

    // --- compressed stream corrupted at BER, tolerant-decoded ---
    bytes = clean_bytes;
    noc::corrupt_bits(bytes, point.bit_error_rate,
                      task_seed(cfg.fault_seed, base));
    double trial_frac = 1.0;
    double trial_acc = 0.0;
    try {
      core::DecodeDiagnostics diag;
      const core::CompressedLayer decoded =
          core::deserialize_tolerant(bytes, &diag);
      if (decoded.original_count == ctx.original.size()) {
        std::vector<float> w(decoded.original_count);
        core::decompress(decoded, w);
        sanitize(w);
        trial_acc = ctx.measure(g, w);
        trial_frac = diag.segments_total
                         ? static_cast<double>(diag.segments_corrupted +
                                               diag.segments_missing) /
                               static_cast<double>(diag.segments_total)
                         : 0.0;
      } else {
        // The weight-count header field itself was hit: total loss.
        trial_acc = measure_all_zero(ctx, g);
      }
    } catch (const core::DecodeError&) {
      trial_acc = measure_all_zero(ctx, g);  // header corrupted beyond use
    }
    acc_c += trial_acc;
    seg_frac += trial_frac;

    // --- uncompressed float stream corrupted at the same BER ---
    std::vector<float> wu = ctx.original;
    noc::corrupt_bits(
        std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(wu.data()),
                                wu.size() * sizeof(float)),
        point.bit_error_rate, task_seed(cfg.fault_seed, base + 1));
    sanitize(wu);
    acc_u += ctx.measure(g, wu);

    // --- CRC + retransmission: every corrupted packet is detected and
    // re-sent, so accuracy is the clean δ accuracy unless the retry budget
    // ran out; dropped packets lose their share of segments. ---
    if (prot.drop_fraction <= 0.0 || clean.segments.empty()) {
      acc_p += point.accuracy_clean;
    } else {
      core::CompressedLayer lossy = clean;
      const auto n_lost = static_cast<std::size_t>(std::ceil(
          prot.drop_fraction * static_cast<double>(lossy.segments.size())));
      Xoshiro256pp rng(task_seed(cfg.fault_seed, base + 2));
      for (std::size_t k = 0; k < n_lost; ++k) {
        auto& s = lossy.segments[rng.bounded(lossy.segments.size())];
        s.m = 0.0F;
        s.q = 0.0F;
      }
      std::vector<float> wp = core::decompress(lossy);
      acc_p += ctx.measure(g, wp);
    }
  }
  const auto n = static_cast<double>(trials);
  point.accuracy_compressed = acc_c / n;
  point.accuracy_uncompressed = acc_u / n;
  point.accuracy_protected = acc_p / n;
  point.corrupted_segment_fraction = seg_frac / n;
  return point;
}

}  // namespace

FaultSweepResult run_fault_sweep(nn::Model& model, const nn::Dataset& test,
                                 const FaultSweepConfig& cfg) {
  NOCW_CHECK(!cfg.bit_error_rates.empty());
  NOCW_CHECK(!cfg.delta_percents.empty());
  for (const double ber : cfg.bit_error_rates) {
    NOCW_CHECK_GE(ber, 0.0);
    NOCW_CHECK_LE(ber, 1.0);
  }

  SweepContext ctx;
  ctx.cfg = &cfg;
  ctx.selected = select_layer(model);
  ctx.labels = test.labels;
  const auto kernel = model.graph.layer(ctx.selected).kernel();
  ctx.original.assign(kernel.begin(), kernel.end());
  auto [outputs, captured] =
      model.graph.forward_capturing(test.images, ctx.selected);
  ctx.captured = std::move(captured);

  FaultSweepResult result;
  result.selected_layer = model.graph.layer(ctx.selected).name();
  result.baseline_accuracy =
      nn::topk_accuracy(outputs, ctx.labels, cfg.topk);

  // NoC cost depends only on the BER; run the (small) cycle-accurate pairs
  // up front, serially — they are deterministic and shared across δ.
  std::vector<NocCost> unprot(cfg.bit_error_rates.size());
  std::vector<NocCost> prot(cfg.bit_error_rates.size());
  for (std::size_t bi = 0; bi < cfg.bit_error_rates.size(); ++bi) {
    unprot[bi] = noc_cost(cfg, cfg.bit_error_rates[bi], /*protect=*/false);
    prot[bi] = noc_cost(cfg, cfg.bit_error_rates[bi], /*protect=*/true);
  }

  const std::size_t nd = cfg.delta_percents.size();
  const std::size_t n_points = cfg.bit_error_rates.size() * nd;
  result.points.resize(n_points);

  ThreadPool& pool = global_pool();
  if (pool.size() <= 1 || ThreadPool::in_parallel_region() || n_points <= 1) {
    for (std::size_t i = 0; i < n_points; ++i) {
      result.points[i] = eval_point(ctx, model.graph, i / nd, i % nd,
                                    unprot[i / nd], prot[i / nd]);
    }
    return result;
  }
  // Each lane replays tails on a private replica; all trial seeds are
  // functions of the flat point index, so the parallel sweep is
  // bit-identical to the serial loop above for any NOCW_THREADS.
  std::vector<std::unique_ptr<nn::Graph>> replicas(pool.size());
  pool.parallel_for(0, n_points, /*grain=*/1,
                    [&](std::size_t i0, std::size_t i1, unsigned lane) {
                      auto& slot = replicas[lane];
                      if (!slot) {
                        slot = std::make_unique<nn::Graph>(model.graph.clone());
                      }
                      for (std::size_t i = i0; i < i1; ++i) {
                        result.points[i] =
                            eval_point(ctx, *slot, i / nd, i % nd,
                                       unprot[i / nd], prot[i / nd]);
                      }
                    });
  return result;
}

void annotate_registry(obs::Registry& reg, const FaultSweepResult& result,
                       std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  reg.set_counter(base + "points", "count", result.points.size());
  reg.set_gauge(base + "baseline_accuracy", "fraction",
                result.baseline_accuracy);
  std::uint64_t crc_failures = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_dropped = 0;
  for (const FaultPoint& p : result.points) {
    crc_failures += p.crc_failures;
    retransmissions += p.retransmissions;
    packets_dropped += p.packets_dropped;
    reg.observe(base + "accuracy_compressed", "fraction",
                p.accuracy_compressed);
    reg.observe(base + "accuracy_protected", "fraction",
                p.accuracy_protected);
    if (p.unprotected_cycles > units::FracCycles{0.0}) {
      reg.observe(base + "protection_cycle_overhead", "ratio",
                  p.protected_cycles / p.unprotected_cycles);
    }
  }
  reg.set_counter(base + "crc_failures", "packets", crc_failures);
  reg.set_counter(base + "retransmissions", "packets", retransmissions);
  reg.set_counter(base + "packets_dropped", "packets", packets_dropped);
}

}  // namespace nocw::eval
