// Serving sweep: offered load x scheduler grid over a ServeSim workload.
//
// Offered load is expressed as a fraction of the accelerator's estimated
// service capacity, so "1.2" always means 20% overload regardless of which
// models the class mix contains. Capacity is the batch-amortized rate: with
// max_batch B, one request costs mix-weighted
//   (full + (B-1)*marginal) / B
// cycles, and capacity_rps is the reciprocal at the configured clock.
// Points above 1.0 are where queues grow without bound and the admission
// queue sheds — exactly the regime where scheduler choice moves p99.
//
// Every grid point replays the *same* seeded arrival timeline per load
// through each scheduler, so comparisons isolate policy. The sweep is a
// serial loop over a serial driver wrapping the thread-parallel (but
// bit-identical) AcceleratorSim, so the whole result diffs clean across
// runs and NOCW_THREADS (ext_serving gates this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "serve/arrival.hpp"
#include "serve/serve_sim.hpp"

namespace nocw::eval {

struct ServingSweepConfig {
  /// Offered load as a fraction of estimated capacity; > 1.0 is overload.
  std::vector<double> offered_loads{0.3, 0.6, 0.9, 1.2, 1.5};
  /// Policies swept (serve::make_scheduler names).
  std::vector<std::string> schedulers{"fifo", "sjf", "priority"};
  serve::ArrivalProcess process = serve::ArrivalProcess::kPoisson;
  /// Arrivals generated per load point (the horizon is derived:
  /// requests / rate). More requests tighten the tail estimates.
  int requests_per_point = 400;
  std::uint64_t arrival_seed = 0x5E21;
  /// MMPP shape knobs, forwarded when `process` is kMmpp.
  double burst_factor = 4.0;
  std::uint64_t segment_cycles = 200'000;
  /// Driver knobs (accelerator, queue bound, batching policy).
  serve::ServeConfig serve;
};

/// One (scheduler, load) grid point.
struct ServingPoint {
  std::string scheduler;
  double offered_load = 0.0;   ///< configured fraction of capacity
  double offered_rps = 0.0;    ///< the rate actually generated
  serve::ServeResult result;
};

struct ServingSweepResult {
  /// Batch-amortized service capacity of the class mix (requests/sec).
  double capacity_rps = 0.0;
  std::vector<serve::ServiceProfile> profiles;  ///< one per class
  std::vector<std::string> class_names;
  std::vector<ServingPoint> points;  ///< load outer, scheduler inner
};

/// Estimated capacity in requests per cycle (before clock scaling).
[[nodiscard]] double capacity_requests_per_cycle(
    std::span<const serve::RequestClass> classes,
    std::span<const serve::ServiceProfile> profiles,
    std::uint64_t max_batch);

/// Run the grid. `classes` are profiled once (one shared ServeSim).
[[nodiscard]] ServingSweepResult run_serving_sweep(
    std::vector<serve::RequestClass> classes, const ServingSweepConfig& cfg);

/// Observed sweep: the same grid with an SLO monitor and a request-trace
/// sink attached to every point.
struct ObservedSweepConfig {
  ServingSweepConfig base;
  /// One policy for every class (budgets in cycles; <= 0 not enforced).
  obs::SloPolicy slo;
  serve::ReqTraceConfig traces;
  /// Base seed for root trace-id minting; each load point derives its own
  /// so a trace id names one request globally across the sweep.
  std::uint64_t trace_seed = 0x7E11;
};

struct ObservedSweepResult {
  ServingSweepResult sweep;  ///< bit-identical to run_serving_sweep's
  /// One finished monitor/sink per point, parallel to sweep.points.
  std::vector<obs::SloMonitor> slo;
  std::vector<serve::RequestTraceSink> sinks;
};

/// Run the observed grid. sweep.points carries exactly the numbers
/// run_serving_sweep would produce for cfg.base (the hooks only observe);
/// bench/ext_reqtrace gates that equivalence.
[[nodiscard]] ObservedSweepResult run_observed_serving_sweep(
    std::vector<serve::RequestClass> classes, const ObservedSweepConfig& cfg);

/// Publish a finished sweep into a counter registry (prefix.*): offered /
/// completed / shed totals as counters (unit "requests"), batch totals
/// (unit "batches"), per-point goodput-vs-capacity fractions and the mean
/// batch size as gauges, and the per-point aggregate p99s as a histogram.
void annotate_registry(obs::Registry& reg, const ServingSweepResult& result,
                       std::string_view prefix = "serve");

}  // namespace nocw::eval
