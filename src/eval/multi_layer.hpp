// Multi-layer compression under an accuracy constraint — the extension the
// paper's Sec. V leaves as future work ("defining a technique aimed at
// selecting the set of layers to be compressed and, for each of them, the
// appropriate compression level").
//
// Greedy ladder search: every parameterized layer starts uncompressed; each
// round tries raising one layer's δ to the next step of the ladder,
// installs the whole current plan, measures accuracy on the probe set, and
// commits the move with the best bits-saved-per-accuracy-lost ratio among
// those that keep accuracy above the constraint. Terminates when no move is
// admissible. Deterministic given (model, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "nn/digits.hpp"
#include "nn/models.hpp"

namespace nocw::eval {

struct MultiLayerConfig {
  /// δ ladder (percent of each layer's own range), ascending.
  std::vector<double> delta_steps{2, 4, 6, 8, 10, 15, 20};
  /// Absolute accuracy floor the plan must respect.
  double min_accuracy = 0.9;
  int probes = 6;   ///< agreement mode probe count
  int topk = 5;
  std::uint64_t probe_seed = 4242;
  int max_rounds = 64;  ///< safety bound on greedy rounds
};

struct LayerPlanEntry {
  std::string layer;
  double delta_percent = 0.0;
  double cr = 1.0;
  std::uint64_t compressed_bits = 0;
  std::uint64_t weight_count = 0;
};

struct MultiLayerResult {
  std::vector<LayerPlanEntry> plan;  ///< compressed layers only
  double accuracy = 0.0;             ///< of the final plan
  double baseline_accuracy = 0.0;
  double weighted_cr = 1.0;          ///< whole-model bits before/after

  /// Convert to the accelerator simulator's plan type.
  [[nodiscard]] accel::CompressionPlan to_accel_plan() const;
};

/// Optimize in place (weights are restored before returning). With `test`
/// non-null accuracy is top-k against labels; otherwise top-k retention
/// against the unmodified model.
MultiLayerResult optimize_multi_layer(nn::Model& model,
                                      const nn::Dataset* test,
                                      const MultiLayerConfig& cfg);

}  // namespace nocw::eval
