#include "eval/serving.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace nocw::eval {

double capacity_requests_per_cycle(
    std::span<const serve::RequestClass> classes,
    std::span<const serve::ServiceProfile> profiles,
    std::uint64_t max_batch) {
  NOCW_CHECK_EQ(classes.size(), profiles.size());
  NOCW_CHECK_GT(max_batch, 0u);
  double mix_total = 0.0;
  for (const serve::RequestClass& c : classes) mix_total += c.mix_fraction;
  NOCW_CHECK_GT(mix_total, 0.0);
  // Mix-weighted amortized cycles per request at full batches.
  double cycles_per_request = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const double amortized =
        static_cast<double>(profiles[i].batch_cycles(max_batch).value()) /
        static_cast<double>(max_batch);
    cycles_per_request += (classes[i].mix_fraction / mix_total) * amortized;
  }
  NOCW_CHECK_GT(cycles_per_request, 0.0);
  return 1.0 / cycles_per_request;
}

namespace {

/// One grid implementation for both the plain and observed sweeps: the
/// loop structure (and so every simulated number) is shared; the observed
/// variant only *adds* hook objects per point.
ServingSweepResult run_grid(std::vector<serve::RequestClass> classes,
                            const ServingSweepConfig& cfg,
                            const ObservedSweepConfig* obs_cfg,
                            ObservedSweepResult* observed) {
  NOCW_CHECK(!cfg.offered_loads.empty());
  NOCW_CHECK(!cfg.schedulers.empty());
  NOCW_CHECK_GT(cfg.requests_per_point, 0);

  const serve::ServeSim sim(cfg.serve, std::move(classes));

  ServingSweepResult out;
  out.profiles.assign(sim.profiles().begin(), sim.profiles().end());
  for (const serve::RequestClass& c : sim.classes()) {
    out.class_names.push_back(c.name);
  }
  const double cap_rpc = capacity_requests_per_cycle(
      sim.classes(), sim.profiles(), cfg.serve.batch.max_batch);
  out.capacity_rps =
      cap_rpc * cfg.serve.accel.noc.clock_ghz * 1e9;

  std::size_t load_index = 0;
  for (const double load : cfg.offered_loads) {
    NOCW_CHECK_GT(load, 0.0);
    const double rate_per_cycle = load * cap_rpc;
    serve::ArrivalConfig acfg;
    acfg.process = cfg.process;
    acfg.rate_per_mcycle = rate_per_cycle * 1e6;
    acfg.horizon_cycles = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(cfg.requests_per_point) / rate_per_cycle));
    acfg.seed = cfg.arrival_seed;
    acfg.burst_factor = cfg.burst_factor;
    acfg.segment_cycles = cfg.segment_cycles;
    // The same arrival timeline replays through every scheduler at this
    // load point: the comparison isolates policy, not luck.
    const std::vector<serve::Arrival> arrivals =
        serve::generate_arrivals(sim.classes(), acfg);
    for (const std::string& sched : cfg.schedulers) {
      ServingPoint p;
      p.scheduler = sched;
      p.offered_load = load;
      p.offered_rps = rate_per_cycle * cfg.serve.accel.noc.clock_ghz * 1e9;
      if (observed != nullptr) {
        observed->slo.emplace_back(sim.classes().size(), obs_cfg->slo);
        observed->sinks.emplace_back(sim.classes().size(), obs_cfg->traces);
        serve::RunHooks hooks;
        hooks.slo = &observed->slo.back();
        hooks.traces = &observed->sinks.back();
        // Per load point, shared across schedulers: the same arrival
        // timeline gets the same trace ids under every policy.
        hooks.trace_seed =
            obs_cfg->trace_seed ^
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(load_index + 1));
        p.result = sim.run(arrivals, *serve::make_scheduler(sched), hooks);
      } else {
        p.result = sim.run(arrivals, sched);
      }
      out.points.push_back(std::move(p));
    }
    ++load_index;
  }
  return out;
}

}  // namespace

ServingSweepResult run_serving_sweep(std::vector<serve::RequestClass> classes,
                                     const ServingSweepConfig& cfg) {
  return run_grid(std::move(classes), cfg, nullptr, nullptr);
}

ObservedSweepResult run_observed_serving_sweep(
    std::vector<serve::RequestClass> classes, const ObservedSweepConfig& cfg) {
  ObservedSweepResult out;
  const std::size_t points =
      cfg.base.offered_loads.size() * cfg.base.schedulers.size();
  out.slo.reserve(points);
  out.sinks.reserve(points);
  out.sweep = run_grid(std::move(classes), cfg.base, &cfg, &out);
  return out;
}

void annotate_registry(obs::Registry& reg, const ServingSweepResult& result,
                       std::string_view prefix) {
  const std::string p(prefix);
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  double batched = 0.0;
  for (const ServingPoint& pt : result.points) {
    offered += pt.result.aggregate.offered;
    completed += pt.result.aggregate.completed;
    shed += pt.result.aggregate.shed;
    batches += pt.result.batches;
    batched += pt.result.mean_batch_size *
               static_cast<double>(pt.result.batches);
    reg.observe(p + ".point_p99_latency", "cycles",
                pt.result.aggregate.latency.p99);
    reg.set_gauge(p + "." + pt.scheduler + ".goodput_fraction", "fraction",
                  result.capacity_rps > 0.0
                      ? pt.result.goodput_rps / result.capacity_rps
                      : 0.0);
  }
  reg.set_counter(p + ".offered_requests", "requests", offered);
  reg.set_counter(p + ".completed_requests", "requests", completed);
  reg.set_counter(p + ".shed_requests", "requests", shed);
  reg.set_counter(p + ".batches_dispatched", "batches", batches);
  reg.set_counter(p + ".grid_points", "count",
                  static_cast<std::uint64_t>(result.points.size()));
  reg.set_gauge(p + ".mean_batch_size", "requests",
                batches > 0 ? batched / static_cast<double>(batches) : 0.0);
}

}  // namespace nocw::eval
