#include "eval/layer_selection.hpp"

#include <algorithm>
#include <stdexcept>

namespace nocw::eval {

int select_layer(const nn::Model& model) {
  const auto nodes = model.graph.parameterized_nodes();
  if (nodes.empty()) throw std::invalid_argument("model has no parameters");
  // The paper weighs both criteria: its Table I picks MobileNet's conv_preds
  // (1.02M weights) over conv_pw_13 (1.05M) and ResNet50's fc1000 (2.05M)
  // over res5c's 3x3 (2.36M) because they sit deeper. Operationally: among
  // layers within 2x of the largest weight count, take the deepest.
  std::size_t max_weights = 0;
  for (int idx : nodes) {
    max_weights =
        std::max(max_weights, model.graph.layer(idx).kernel().size());
  }
  int best = -1;
  for (int idx : nodes) {
    const std::size_t w = model.graph.layer(idx).kernel().size();
    if (2 * w >= max_weights) best = idx;  // nodes are in depth order
  }
  return best;
}

std::string select_layer_name(const nn::Model& model) {
  return model.graph.layer(select_layer(model)).name();
}

}  // namespace nocw::eval
