// Per-layer sensitivity analysis (paper Fig. 9).
//
// The sensitivity of a layer is the accuracy drop caused by perturbing its
// weights with noise of a fixed relative magnitude (a fraction of the
// layer's own value range). The paper uses this to justify the Layer
// Selection policy: layers near the input are markedly more sensitive than
// the deep, parameter-heavy layers the policy picks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/digits.hpp"
#include "nn/models.hpp"

namespace nocw::eval {

struct SensitivityConfig {
  double noise_fraction = 0.1;  ///< noise amplitude as fraction of range
  int trials = 2;               ///< noise draws averaged per layer
  int probes = 6;               ///< agreement-mode probe count
  int topk = 5;
  std::uint64_t seed = 777;
  /// Scale each layer's per-weight noise by sqrt(n̄/n) (n̄ = geometric mean
  /// layer size) so every layer receives the same total perturbation
  /// energy. Without this, parameter-heavy layers accumulate more total
  /// noise and the comparison conflates size with fragility; with it, the
  /// per-unit-perturbation sensitivity the paper's Fig. 9 plots emerges.
  bool equalize_energy = true;
};

struct LayerSensitivity {
  std::string layer;
  double accuracy_drop = 0.0;  ///< baseline accuracy - perturbed accuracy
  double normalized = 0.0;     ///< drop / max drop over all layers
};

/// Perturb each parameterized layer in turn and measure the accuracy drop.
/// With `test` non-null accuracy is top-k against labels (trained LeNet-5);
/// otherwise it is top-k agreement with the unperturbed model.
std::vector<LayerSensitivity> sensitivity_analysis(
    nn::Model& model, const nn::Dataset* test, const SensitivityConfig& cfg);

}  // namespace nocw::eval
