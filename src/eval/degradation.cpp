#include "eval/degradation.hpp"

#include <exception>
#include <memory>
#include <string>

#include "accel/simulator.hpp"
#include "accel/summary.hpp"
#include "eval/flow.hpp"
#include "util/check.hpp"

namespace nocw::eval {

DegradationResult run_degradation_sweep(nn::Model& model,
                                        const nn::Dataset& test,
                                        const DegradationConfig& cfg) {
  NOCW_CHECK(cfg.max_router_faults >= 0);
  NOCW_CHECK(!cfg.delta_percents.empty());

  // The δ axis is independent of the fault axis: compression accuracy and
  // the per-δ weight-stream plans are computed once on the healthy model.
  EvalConfig ecfg;
  ecfg.topk = cfg.topk;
  DeltaEvaluator ev(model, test, ecfg);
  const std::vector<DeltaPoint> dpoints = ev.evaluate_many(cfg.delta_percents);
  const accel::ModelSummary summary = accel::summarize(model);

  DegradationResult out;
  out.selected_layer = ev.selected_layer();
  out.baseline_accuracy = ev.baseline_accuracy();
  out.points.reserve(static_cast<std::size_t>(cfg.max_router_faults + 1) *
                     dpoints.size());

  for (int f = 0; f <= cfg.max_router_faults; ++f) {
    accel::AccelConfig acfg;
    acfg.noc = cfg.noc;
    acfg.noc.routing = noc::Routing::XY;  // west-first is defined over XY
    acfg.noc.resilience.route_mode = noc::RouteMode::WestFirst;
    acfg.noc.fault.permanent_router_outages = f;
    acfg.noc.fault.seed = cfg.fault_seed;
    acfg.noc_window_flits = cfg.noc_window_flits;
    acfg.max_phase_cycles = cfg.max_phase_cycles;

    // Construction itself can refuse an arm (no surviving MI or PE); the
    // arm's rows then record non-completion rather than aborting the sweep
    // — "how many faults until the mesh is unusable" is a result, not an
    // error.
    std::unique_ptr<accel::AcceleratorSim> sim;
    try {
      sim = std::make_unique<accel::AcceleratorSim>(acfg);
    } catch (const std::exception&) {
      sim.reset();
    }

    for (const DeltaPoint& dp : dpoints) {
      DegradationPoint p;
      p.router_faults = f;
      p.delta_percent = dp.delta_percent;
      if (sim != nullptr) {
        p.live_mis = static_cast<int>(sim->live_memory_interfaces().size());
        p.live_pes = static_cast<int>(sim->live_processing_elements().size());
        try {
          accel::CompressionPlan plan;
          plan[ev.selected_layer()] = dp.compression;
          const accel::InferenceResult res = sim->simulate(summary, &plan);
          p.completed = true;
          p.accuracy = dp.accuracy;
          p.latency_cycles = res.latency.total();
          p.energy_j = res.energy.total();
        } catch (const std::exception&) {
          p.completed = false;  // drain timeout / blocked route
        }
      }
      out.points.push_back(p);
    }
  }

  // Degradation ratios against the zero-fault arm at the same δ.
  const std::size_t nd = dpoints.size();
  for (std::size_t i = nd; i < out.points.size(); ++i) {
    DegradationPoint& p = out.points[i];
    const DegradationPoint& healthy = out.points[i % nd];
    if (p.completed && healthy.completed &&
        healthy.latency_cycles > units::FracCycles{0.0} &&
        healthy.energy_j > units::Joules{0.0}) {
      p.latency_vs_healthy = p.latency_cycles / healthy.latency_cycles;
      p.energy_vs_healthy = p.energy_j / healthy.energy_j;
    }
  }
  for (std::size_t i = 0; i < nd && i < out.points.size(); ++i) {
    if (out.points[i].completed) {
      out.points[i].latency_vs_healthy = 1.0;
      out.points[i].energy_vs_healthy = 1.0;
    }
  }
  return out;
}

void annotate_registry(obs::Registry& reg, const DegradationResult& result,
                       std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  reg.set_counter(base + "points", "count", result.points.size());
  reg.set_gauge(base + "baseline_accuracy", "fraction",
                result.baseline_accuracy);
  std::uint64_t completed = 0;
  int max_faults_survived = 0;
  for (const DegradationPoint& p : result.points) {
    if (!p.completed) continue;
    ++completed;
    if (p.router_faults > max_faults_survived) {
      max_faults_survived = p.router_faults;
    }
    reg.observe(base + "accuracy", "fraction", p.accuracy);
    if (p.latency_vs_healthy > 0.0) {
      reg.observe(base + "latency_vs_healthy", "ratio", p.latency_vs_healthy);
      reg.observe(base + "energy_vs_healthy", "ratio", p.energy_vs_healthy);
    }
  }
  reg.set_counter(base + "completed", "count", completed);
  reg.set_gauge(base + "max_faults_survived", "routers",
                static_cast<double>(max_faults_survived));
}

}  // namespace nocw::eval
