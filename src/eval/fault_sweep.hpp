// Accuracy-under-fault evaluation: what transmission errors do to the
// compressed weight stream, and what CRC + retransmission buys back.
//
// The paper's codec trades redundancy for bandwidth, which concentrates
// information: one flipped bit in a serialized ⟨m, q, len⟩ record corrupts an
// entire reconstructed sub-succession, while the same bit in an uncompressed
// float stream perturbs a single weight. This sweep quantifies that fragility
// (accuracy of compressed vs uncompressed streams across bit-error rate × δ)
// and prices the remedy: per-packet CRC-32 with MI→PE retransmission, whose
// latency/energy overhead is measured on the cycle-accurate NoC with the same
// fault seed.
//
// Determinism: every stochastic choice derives from
// task_seed(cfg.fault_seed, flat trial index) or from the NoC FaultModel's
// counter-based hashes, so results are bit-identical across runs and for any
// NOCW_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "noc/config.hpp"
#include "obs/registry.hpp"
#include "power/energy_model.hpp"
#include "util/units.hpp"

namespace nocw::eval {

struct FaultSweepConfig {
  /// Per-bit flip probabilities applied to the serialized weight stream and,
  /// on the NoC side, to link traversals.
  std::vector<double> bit_error_rates{1e-6, 1e-5, 1e-4};
  /// Codec tolerance points (δ as % of the weight range, paper convention).
  std::vector<double> delta_percents{0.0, 2.0};
  /// Independent corruption trials averaged per (BER, δ) point.
  int trials = 3;
  /// Root seed for every fault decision in the sweep.
  std::uint64_t fault_seed = 90210;
  /// Codec settings; segment_checksum is forced on so corrupted segments are
  /// detected (and zeroed) rather than silently decoded.
  core::CodecConfig codec;
  /// Top-k for accuracy against the dataset labels (1 for LeNet-5).
  int topk = 1;

  // --- NoC cost model for the CRC/retransmission overhead ---
  noc::NocConfig noc;
  /// Weight-stream volume simulated per NoC cost run (kept small; the cost
  /// is reported per run, the *relative* overhead is what matters).
  std::uint64_t noc_flits = 4000;
  std::uint32_t packet_flits = 8;
  std::uint64_t max_noc_cycles = 2'000'000;
  power::EnergyTable energy;
};

/// One (bit-error rate, δ) operating point, trial-averaged.
struct FaultPoint {
  double bit_error_rate = 0.0;
  double delta_percent = 0.0;

  // --- accuracy (top-k against the test labels) ---
  double accuracy_clean = 0.0;         ///< δ-compressed, fault-free
  double accuracy_uncompressed = 0.0;  ///< raw float stream corrupted at BER
  double accuracy_compressed = 0.0;    ///< compressed stream corrupted at BER
  double accuracy_protected = 0.0;     ///< with CRC + retransmission
  /// Mean fraction of segments the tolerant decoder had to zero.
  double corrupted_segment_fraction = 0.0;

  // --- NoC cost of the weight stream at this BER (per cfg.noc_flits) ---
  units::FracCycles unprotected_cycles;
  units::FracCycles protected_cycles;
  units::Joules unprotected_energy_j;
  units::Joules protected_energy_j;
  std::uint64_t crc_failures = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_dropped = 0;
};

struct FaultSweepResult {
  std::string selected_layer;
  double baseline_accuracy = 0.0;  ///< uncompressed, fault-free
  std::vector<FaultPoint> points;  ///< row-major: BER outer, δ inner
};

/// Run the sweep on `model`'s selected layer against `test`. The model is
/// read (cloned per thread lane), never left mutated. Results are
/// bit-identical across runs and thread counts for a fixed cfg.
FaultSweepResult run_fault_sweep(nn::Model& model, const nn::Dataset& test,
                                 const FaultSweepConfig& cfg);

/// Publish a finished sweep into a counter registry (prefix.*): point and
/// CRC/retransmission totals as counters, baseline accuracy as a gauge, and
/// the per-point protected/compressed accuracies and protection cycle
/// overheads as histograms.
void annotate_registry(obs::Registry& reg, const FaultSweepResult& result,
                       std::string_view prefix = "fault");

}  // namespace nocw::eval
