#include "eval/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eval/probes.hpp"
#include "nn/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nocw::eval {

std::vector<LayerSensitivity> sensitivity_analysis(
    nn::Model& model, const nn::Dataset* test, const SensitivityConfig& cfg) {
  const nn::Tensor inputs =
      test ? test->images
           : make_probes(cfg.probes, model.input_size, model.input_channels,
                         cfg.seed);
  const nn::Tensor baseline = model.graph.forward(inputs);
  const double baseline_acc =
      test ? nn::topk_accuracy(baseline, test->labels, cfg.topk) : 1.0;

  Xoshiro256pp rng(cfg.seed ^ 0xABCDEFULL);
  const auto param_nodes = model.graph.parameterized_nodes();
  double geo_mean_size = 1.0;
  if (cfg.equalize_energy) {
    double log_sum = 0.0;
    for (int idx : param_nodes) {
      log_sum += std::log(static_cast<double>(
          std::max<std::size_t>(1, model.graph.layer(idx).kernel().size())));
    }
    geo_mean_size = std::exp(log_sum / static_cast<double>(param_nodes.size()));
  }

  std::vector<LayerSensitivity> out;
  for (int idx : param_nodes) {
    nn::Layer& layer = model.graph.layer(idx);
    auto kernel = layer.kernel();
    const std::vector<float> original(kernel.begin(), kernel.end());
    const double range = value_range(kernel);
    double amp = cfg.noise_fraction * (range > 0 ? range : 1.0);
    if (cfg.equalize_energy && !kernel.empty()) {
      amp *= std::sqrt(geo_mean_size / static_cast<double>(kernel.size()));
    }

    double acc_sum = 0.0;
    for (int t = 0; t < cfg.trials; ++t) {
      for (std::size_t i = 0; i < kernel.size(); ++i) {
        kernel[i] = original[i] +
                    static_cast<float>(rng.uniform(-amp, amp));
      }
      const nn::Tensor outputs = model.graph.forward(inputs);
      acc_sum += test ? nn::topk_accuracy(outputs, test->labels, cfg.topk)
                      : nn::mean_topk_agreement(baseline, outputs, cfg.topk);
      std::copy(original.begin(), original.end(), kernel.begin());
    }
    LayerSensitivity s;
    s.layer = layer.name();
    s.accuracy_drop =
        std::max(0.0, baseline_acc - acc_sum / cfg.trials);
    out.push_back(std::move(s));
  }
  double max_drop = 0.0;
  for (const auto& s : out) max_drop = std::max(max_drop, s.accuracy_drop);
  for (auto& s : out) {
    s.normalized = max_drop > 0 ? s.accuracy_drop / max_drop : 0.0;
  }
  return out;
}

}  // namespace nocw::eval
