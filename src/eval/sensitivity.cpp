#include "eval/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "eval/probes.hpp"
#include "nn/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {

namespace {

struct LayerJob {
  int node = -1;
  std::vector<float> original;
  double amp = 0.0;
};

}  // namespace

std::vector<LayerSensitivity> sensitivity_analysis(
    nn::Model& model, const nn::Dataset* test, const SensitivityConfig& cfg) {
  const nn::Tensor inputs =
      test ? test->images
           : make_probes(cfg.probes, model.input_size, model.input_channels,
                         cfg.seed);
  const nn::Tensor baseline = model.graph.forward(inputs);
  const double baseline_acc =
      test ? nn::topk_accuracy(baseline, test->labels, cfg.topk) : 1.0;

  const auto param_nodes = model.graph.parameterized_nodes();
  double geo_mean_size = 1.0;
  if (cfg.equalize_energy) {
    double log_sum = 0.0;
    for (int idx : param_nodes) {
      log_sum += std::log(static_cast<double>(
          std::max<std::size_t>(1, model.graph.layer(idx).kernel().size())));
    }
    geo_mean_size = std::exp(log_sum / static_cast<double>(param_nodes.size()));
  }

  std::vector<LayerJob> jobs;
  jobs.reserve(param_nodes.size());
  for (int idx : param_nodes) {
    const auto kernel = model.graph.layer(idx).kernel();
    LayerJob job;
    job.node = idx;
    job.original.assign(kernel.begin(), kernel.end());
    const double range = value_range(kernel);
    job.amp = cfg.noise_fraction * (range > 0 ? range : 1.0);
    if (cfg.equalize_energy && !kernel.empty()) {
      job.amp *=
          std::sqrt(geo_mean_size / static_cast<double>(kernel.size()));
    }
    jobs.push_back(std::move(job));
  }

  // One task per (layer, trial) pair. Each task draws its noise from an RNG
  // seeded by (cfg.seed, task index), so the stream a trial sees is fixed no
  // matter how tasks land on threads; per-task accuracies are reduced in
  // task order below, keeping the floating-point sum order fixed too.
  const std::size_t trials = static_cast<std::size_t>(cfg.trials);
  const std::size_t tasks = jobs.size() * trials;
  std::vector<double> task_acc(tasks, 0.0);

  ThreadPool& pool = global_pool();
  // Weight mutation is not thread-safe on a shared graph: with one lane the
  // model's own graph is perturbed and restored in place (the historical
  // serial path, zero copies); with several lanes each lane lazily clones a
  // private replica and the caller's model is never touched concurrently.
  std::vector<std::unique_ptr<nn::Graph>> replicas(pool.size());
  auto graph_for_lane = [&](unsigned lane) -> nn::Graph& {
    if (pool.size() <= 1) return model.graph;
    auto& slot = replicas[lane];
    if (!slot) slot = std::make_unique<nn::Graph>(model.graph.clone());
    return *slot;
  };

  pool.parallel_for(
      0, tasks, /*grain=*/1,
      [&](std::size_t t0, std::size_t t1, unsigned lane) {
        nn::Graph& graph = graph_for_lane(lane);
        for (std::size_t t = t0; t < t1; ++t) {
          const LayerJob& job = jobs[t / trials];
          auto kernel = graph.layer(job.node).kernel();
          Xoshiro256pp rng(task_seed(cfg.seed ^ 0xABCDEFULL, t));
          for (std::size_t i = 0; i < kernel.size(); ++i) {
            kernel[i] = job.original[i] +
                        static_cast<float>(rng.uniform(-job.amp, job.amp));
          }
          const nn::Tensor outputs = graph.forward(inputs);
          task_acc[t] =
              test ? nn::topk_accuracy(outputs, test->labels, cfg.topk)
                   : nn::mean_topk_agreement(baseline, outputs, cfg.topk);
          std::copy(job.original.begin(), job.original.end(), kernel.begin());
        }
      });

  std::vector<LayerSensitivity> out;
  out.reserve(jobs.size());
  for (std::size_t li = 0; li < jobs.size(); ++li) {
    double acc_sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      acc_sum += task_acc[li * trials + t];
    }
    LayerSensitivity s;
    s.layer = model.graph.layer(jobs[li].node).name();
    s.accuracy_drop =
        std::max(0.0, baseline_acc - acc_sum / cfg.trials);
    out.push_back(std::move(s));
  }
  double max_drop = 0.0;
  for (const auto& s : out) max_drop = std::max(max_drop, s.accuracy_drop);
  for (auto& s : out) {
    s.normalized = max_drop > 0 ? s.accuracy_drop / max_drop : 0.0;
  }
  return out;
}

}  // namespace nocw::eval
