#include "eval/probes.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace nocw::eval {

namespace {

/// Separable box blur in place (3-tap), one pass per axis.
void box_blur(std::vector<float>& img, int h, int w) {
  std::vector<float> tmp(img.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0F;
      int cnt = 0;
      for (int dx = -1; dx <= 1; ++dx) {
        const int xx = x + dx;
        if (xx < 0 || xx >= w) continue;
        acc += img[static_cast<std::size_t>(y) * w + xx];
        ++cnt;
      }
      tmp[static_cast<std::size_t>(y) * w + x] = acc / static_cast<float>(cnt);
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0F;
      int cnt = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        const int yy = y + dy;
        if (yy < 0 || yy >= h) continue;
        acc += tmp[static_cast<std::size_t>(yy) * w + x];
        ++cnt;
      }
      img[static_cast<std::size_t>(y) * w + x] = acc / static_cast<float>(cnt);
    }
  }
}

}  // namespace

nn::Tensor make_probes(int n, int size, int channels, std::uint64_t seed) {
  nn::Tensor out({n, size, size, channels});
  Xoshiro256pp rng(seed);
  std::vector<float> plane(static_cast<std::size_t>(size) * size);
  for (int img = 0; img < n; ++img) {
    for (int c = 0; c < channels; ++c) {
      for (auto& v : plane) v = static_cast<float>(rng.normal());
      // A few blur passes push the spectrum toward 1/f.
      box_blur(plane, size, size);
      box_blur(plane, size, size);
      box_blur(plane, size, size);
      float lo = plane[0];
      float hi = plane[0];
      for (float v : plane) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const float span = hi > lo ? hi - lo : 1.0F;
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          out.at(img, y, x, c) =
              (plane[static_cast<std::size_t>(y) * size + x] - lo) / span;
        }
      }
    }
  }
  return out;
}

}  // namespace nocw::eval
