// Probe input generation for the agreement-accuracy evaluation
// (DESIGN.md §4: stands in for the ImageNet validation images).
//
// Probes are random fields with natural-image statistics (approximately 1/f
// spatial spectrum, obtained by repeated box filtering of white noise),
// normalized to [0, 1]. Deterministic per seed.
#pragma once

#include <cstdint>

#include "nn/tensor.hpp"

namespace nocw::eval {

/// A batch of n probes shaped (n, size, size, channels).
nn::Tensor make_probes(int n, int size, int channels, std::uint64_t seed);

}  // namespace nocw::eval
