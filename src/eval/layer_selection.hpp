// Layer Selection policy (paper Sec. IV-A).
//
// "The layer with the largest number of parameters and more in depth located
// is selected": among parameterized layers, pick the one with the most
// kernel weights, breaking ties toward the deepest node. The zoo's
// `selected_layer` fields are cross-checked against this policy by tests.
#pragma once

#include <string>

#include "nn/models.hpp"

namespace nocw::eval {

/// Graph node index of the layer the policy selects. Throws if the model has
/// no parameterized layers.
int select_layer(const nn::Model& model);

/// Name of the selected layer.
std::string select_layer_name(const nn::Model& model);

}  // namespace nocw::eval
