// The paper's evaluation flow (Fig. 8), as a reusable library.
//
// A DeltaEvaluator owns one model, the selected layer (Layer Selection
// block), a probe set, and the cached activations feeding the selected
// layer. Because compression perturbs exactly one layer, the expensive
// network prefix runs once; each δ then costs one compression pass over the
// layer's weights plus a cheap tail replay. Accuracy is top-1 against labels
// when a labeled dataset is supplied (LeNet-5), otherwise top-5 agreement
// with the original model's outputs (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "core/metrics.hpp"
#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"

namespace nocw::eval {

struct EvalConfig {
  int probes = 8;          ///< probe inputs for agreement mode
  int topk = 5;            ///< 5 for the ImageNet-scale zoo, 1 for LeNet-5
  std::uint64_t probe_seed = 4242;
  core::CodecConfig codec;  ///< delta_percent is overridden per evaluation
};

/// Everything the benches need about one δ point.
struct DeltaPoint {
  double delta_percent = 0.0;
  double accuracy = 0.0;                  ///< top-k (or top-1) accuracy
  core::CompressionReport report;         ///< the Table II row
  accel::LayerCompression compression;    ///< for the accelerator plan
};

class DeltaEvaluator {
 public:
  /// Agreement mode: probes are generated; baseline = original outputs.
  DeltaEvaluator(nn::Model& model, const EvalConfig& cfg);

  /// Labeled mode: accuracy is measured against `test` labels (the model
  /// should have been trained first).
  DeltaEvaluator(nn::Model& model, const nn::Dataset& test,
                 const EvalConfig& cfg);

  /// Accuracy of the unmodified model (top-k agreement mode reports 1.0 by
  /// construction only if the model is deterministic — it is — so labeled
  /// mode is the interesting baseline).
  [[nodiscard]] double baseline_accuracy() const {
    return baseline_accuracy_;
  }

  /// Compress the selected layer at δ, replay the tail, restore weights.
  [[nodiscard]] DeltaPoint evaluate(double delta_percent);

  /// Evaluate a whole δ sweep. Points are independent, so they run
  /// concurrently on the global thread pool (each lane replays the tail on
  /// a private replica of the model); results are bit-identical to calling
  /// evaluate() serially, in sweep order, for any NOCW_THREADS.
  [[nodiscard]] std::vector<DeltaPoint> evaluate_many(
      const std::vector<double>& delta_percents);

  /// Fraction of the model's parameters held by the selected layer.
  [[nodiscard]] double selected_fraction() const noexcept {
    return selected_fraction_;
  }
  [[nodiscard]] const std::string& selected_layer() const noexcept {
    return selected_name_;
  }

  /// δ evaluations performed so far (evaluate + evaluate_many points).
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }

  /// Publish the evaluator's state into a counter registry (prefix.*):
  /// baseline accuracy, selected-layer fraction, probe count, and the
  /// running evaluation count.
  void annotate_registry(obs::Registry& reg,
                         std::string_view prefix = "eval") const;

  /// Publish the evaluator's provenance into a run manifest: model name and
  /// evaluation-flow config strings, plus baseline-accuracy / evaluation
  /// metrics. Benches call this right before write_manifest so run.json
  /// records which model/layer/probe setup produced the numbers.
  void annotate_manifest(obs::RunManifest& m) const;

 private:
  void prepare(const nn::Tensor& inputs);
  [[nodiscard]] DeltaPoint evaluate_on(nn::Graph& graph,
                                       double delta_percent) const;

  nn::Model* model_;
  EvalConfig cfg_;
  int selected_node_ = -1;
  std::string selected_name_;
  double selected_fraction_ = 0.0;
  nn::Tensor captured_;          ///< activations feeding the selected layer
  nn::Tensor baseline_outputs_;  ///< original model outputs on the probes
  std::vector<int> labels_;      ///< labeled mode only
  double baseline_accuracy_ = 1.0;
  std::vector<float> original_weights_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace nocw::eval
