#include "power/cacti_like.hpp"

#include <algorithm>
#include <cmath>

namespace nocw::power {

MemoryEstimate sram_estimate(std::uint64_t capacity_bytes, int word_bits) {
  MemoryEstimate e;
  // Anchored at 8 KB / 64-bit -> 1.6 pJ read, 1.8 pJ write, 0.25 mW,
  // 1 cycle. Energy scales with sqrt(capacity) (array dimension) and
  // linearly with word width; leakage scales linearly with capacity.
  const double cap_ratio =
      std::sqrt(static_cast<double>(capacity_bytes) / 8192.0);
  const double width_ratio = static_cast<double>(word_bits) / 64.0;
  e.read_energy_pj = units::Picojoules{1.6 * cap_ratio * width_ratio};
  e.write_energy_pj = units::Picojoules{1.8 * cap_ratio * width_ratio};
  e.leakage_mw =
      units::Milliwatts{0.25 * static_cast<double>(capacity_bytes) / 8192.0};
  // One extra pipeline cycle per 8x capacity beyond 16 KB.
  const double octaves =
      std::log2(std::max(1.0, static_cast<double>(capacity_bytes) / 16384.0));
  e.access_cycles =
      units::Cycles{1 + static_cast<std::uint64_t>(octaves / 3.0)};
  return e;
}

MemoryEstimate dram_estimate(std::uint64_t capacity_bytes, int word_bits) {
  MemoryEstimate e;
  // Interface + array energy per word dominates and is capacity-insensitive;
  // background power scales mildly with capacity (refresh).
  const double width_ratio = static_cast<double>(word_bits) / 64.0;
  e.read_energy_pj = units::Picojoules{400.0 * width_ratio};
  e.write_energy_pj = units::Picojoules{400.0 * width_ratio};
  e.leakage_mw = units::Milliwatts{
      60.0 * (0.5 + 0.5 * static_cast<double>(capacity_bytes) / (1ULL << 30))};
  e.access_cycles = units::Cycles{100};  // row activation + transfer at 1 GHz
  return e;
}

}  // namespace nocw::power
