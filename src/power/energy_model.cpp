#include "power/energy_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace nocw::power {

namespace {

/// a + b, throwing nocw::CheckError on 64-bit wraparound.
std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  NOCW_CHECK_LE(b, UINT64_MAX - a);
  return a + b;
}

}  // namespace

EventCounts& EventCounts::operator+=(const EventCounts& o) {
  router_traversals = checked_add(router_traversals, o.router_traversals);
  link_traversals = checked_add(link_traversals, o.link_traversals);
  buffer_writes = checked_add(buffer_writes, o.buffer_writes);
  buffer_reads = checked_add(buffer_reads, o.buffer_reads);
  crc_flit_events = checked_add(crc_flit_events, o.crc_flit_events);
  macs = checked_add(macs, o.macs);
  decompress_steps = checked_add(decompress_steps, o.decompress_steps);
  sram_reads = checked_add(sram_reads, o.sram_reads);
  sram_writes = checked_add(sram_writes, o.sram_writes);
  dram_accesses = checked_add(dram_accesses, o.dram_accesses);
  return *this;
}

namespace {
constexpr double kPjToJ = 1e-12;
constexpr double kMwToW = 1e-3;
}  // namespace

void EnergyComponent::check_invariants() const {
  NOCW_CHECK(std::isfinite(dynamic_j));
  NOCW_CHECK(std::isfinite(leakage_j));
  NOCW_CHECK_GE(dynamic_j, 0.0);
  NOCW_CHECK_GE(leakage_j, 0.0);
}

void EnergyBreakdown::check_invariants() const {
  communication.check_invariants();
  computation.check_invariants();
  local_memory.check_invariants();
  main_memory.check_invariants();
}

EnergyBreakdown annotate(const EventCounts& e, double seconds,
                         const EnergyTable& t, const PlatformShape& shape) {
  // Leakage integrates elapsed time and scales with the platform shape; a
  // negative duration or an empty platform is always a caller bug, and the
  // resulting negative joules would silently skew every Fig. 10 component.
  NOCW_CHECK_GE(seconds, 0.0);
  NOCW_CHECK_GT(shape.routers, 0);
  NOCW_CHECK_GT(shape.pes, 0);

  EnergyBreakdown out;

  out.communication.dynamic_j =
      (static_cast<double>(e.router_traversals) * t.router_traversal_pj +
       static_cast<double>(e.link_traversals) * t.link_traversal_pj +
       static_cast<double>(e.buffer_writes) * t.buffer_write_pj +
       static_cast<double>(e.buffer_reads) * t.buffer_read_pj +
       static_cast<double>(e.crc_flit_events) * t.crc_pj) *
      kPjToJ;
  out.communication.leakage_j =
      static_cast<double>(shape.routers) * t.router_leak_mw * kMwToW * seconds;

  out.computation.dynamic_j =
      (static_cast<double>(e.macs) * t.mac_pj +
       static_cast<double>(e.decompress_steps) * t.decompress_pj) *
      kPjToJ;
  out.computation.leakage_j =
      static_cast<double>(shape.pes) * t.pe_leak_mw * kMwToW * seconds;

  out.local_memory.dynamic_j =
      (static_cast<double>(e.sram_reads) * t.sram_read_pj +
       static_cast<double>(e.sram_writes) * t.sram_write_pj) *
      kPjToJ;
  out.local_memory.leakage_j =
      static_cast<double>(shape.pes) * t.sram_leak_mw * kMwToW * seconds;

  out.main_memory.dynamic_j =
      static_cast<double>(e.dram_accesses) * t.dram_access_pj * kPjToJ;
  out.main_memory.leakage_j = t.dram_background_mw * kMwToW * seconds;

  return out;
}

}  // namespace nocw::power
