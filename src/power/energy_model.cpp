#include "power/energy_model.hpp"

namespace nocw::power {

EventCounts& EventCounts::operator+=(const EventCounts& o) noexcept {
  router_traversals += o.router_traversals;
  link_traversals += o.link_traversals;
  buffer_writes += o.buffer_writes;
  buffer_reads += o.buffer_reads;
  macs += o.macs;
  decompress_steps += o.decompress_steps;
  sram_reads += o.sram_reads;
  sram_writes += o.sram_writes;
  dram_accesses += o.dram_accesses;
  return *this;
}

namespace {
constexpr double kPjToJ = 1e-12;
constexpr double kMwToW = 1e-3;
}  // namespace

EnergyBreakdown annotate(const EventCounts& e, double seconds,
                         const EnergyTable& t, const PlatformShape& shape) {
  EnergyBreakdown out;

  out.communication.dynamic_j =
      (static_cast<double>(e.router_traversals) * t.router_traversal_pj +
       static_cast<double>(e.link_traversals) * t.link_traversal_pj +
       static_cast<double>(e.buffer_writes) * t.buffer_write_pj +
       static_cast<double>(e.buffer_reads) * t.buffer_read_pj) *
      kPjToJ;
  out.communication.leakage_j =
      static_cast<double>(shape.routers) * t.router_leak_mw * kMwToW * seconds;

  out.computation.dynamic_j =
      (static_cast<double>(e.macs) * t.mac_pj +
       static_cast<double>(e.decompress_steps) * t.decompress_pj) *
      kPjToJ;
  out.computation.leakage_j =
      static_cast<double>(shape.pes) * t.pe_leak_mw * kMwToW * seconds;

  out.local_memory.dynamic_j =
      (static_cast<double>(e.sram_reads) * t.sram_read_pj +
       static_cast<double>(e.sram_writes) * t.sram_write_pj) *
      kPjToJ;
  out.local_memory.leakage_j =
      static_cast<double>(shape.pes) * t.sram_leak_mw * kMwToW * seconds;

  out.main_memory.dynamic_j =
      static_cast<double>(e.dram_accesses) * t.dram_access_pj * kPjToJ;
  out.main_memory.leakage_j = t.dram_background_mw * kMwToW * seconds;

  return out;
}

}  // namespace nocw::power
