#include "power/energy_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace nocw::power {

namespace {

/// a + b, throwing nocw::CheckError on 64-bit wraparound.
std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  NOCW_CHECK_LE(b, UINT64_MAX - a);
  return a + b;
}

}  // namespace

EventCounts& EventCounts::operator+=(const EventCounts& o) {
  router_traversals = checked_add(router_traversals, o.router_traversals);
  link_traversals = checked_add(link_traversals, o.link_traversals);
  buffer_writes = checked_add(buffer_writes, o.buffer_writes);
  buffer_reads = checked_add(buffer_reads, o.buffer_reads);
  crc_flit_events = checked_add(crc_flit_events, o.crc_flit_events);
  macs = checked_add(macs, o.macs);
  decompress_steps = checked_add(decompress_steps, o.decompress_steps);
  sram_reads = checked_add(sram_reads, o.sram_reads);
  sram_writes = checked_add(sram_writes, o.sram_writes);
  dram_accesses = checked_add(dram_accesses, o.dram_accesses);
  return *this;
}

void EnergyComponent::check_invariants() const {
  NOCW_CHECK(std::isfinite(dynamic_j.value()));
  NOCW_CHECK(std::isfinite(leakage_j.value()));
  NOCW_CHECK_GE(dynamic_j.value(), 0.0);
  NOCW_CHECK_GE(leakage_j.value(), 0.0);
}

void EnergyBreakdown::check_invariants() const {
  communication.check_invariants();
  computation.check_invariants();
  local_memory.check_invariants();
  main_memory.check_invariants();
}

EnergyBreakdown annotate(const EventCounts& e, units::Seconds seconds,
                         const EnergyTable& t, const PlatformShape& shape) {
  // Leakage integrates elapsed time and scales with the platform shape; a
  // negative duration or an empty platform is always a caller bug, and the
  // resulting negative joules would silently skew every Fig. 10 component.
  NOCW_CHECK_GE(seconds.value(), 0.0);
  NOCW_CHECK_GT(shape.routers, 0);
  NOCW_CHECK_GT(shape.pes, 0);

  // Every sum accumulates in picojoules (resp. milliwatts) and converts to
  // joules exactly once at the end — the same factor in the same place as
  // the pre-typed code, so the Fig. 10 figures are bit-identical.
  EnergyBreakdown out;

  out.communication.dynamic_j = units::to_joules(
      static_cast<double>(e.router_traversals) * t.router_traversal_pj +
      static_cast<double>(e.link_traversals) * t.link_traversal_pj +
      static_cast<double>(e.buffer_writes) * t.buffer_write_pj +
      static_cast<double>(e.buffer_reads) * t.buffer_read_pj +
      static_cast<double>(e.crc_flit_events) * t.crc_pj);
  out.communication.leakage_j =
      units::to_watts(static_cast<double>(shape.routers) * t.router_leak_mw) *
      seconds;

  out.computation.dynamic_j = units::to_joules(
      static_cast<double>(e.macs) * t.mac_pj +
      static_cast<double>(e.decompress_steps) * t.decompress_pj);
  out.computation.leakage_j =
      units::to_watts(static_cast<double>(shape.pes) * t.pe_leak_mw) * seconds;

  out.local_memory.dynamic_j = units::to_joules(
      static_cast<double>(e.sram_reads) * t.sram_read_pj +
      static_cast<double>(e.sram_writes) * t.sram_write_pj);
  out.local_memory.leakage_j =
      units::to_watts(static_cast<double>(shape.pes) * t.sram_leak_mw) *
      seconds;

  out.main_memory.dynamic_j = units::to_joules(
      static_cast<double>(e.dram_accesses) * t.dram_access_pj);
  out.main_memory.leakage_j = units::to_watts(t.dram_background_mw) * seconds;

  return out;
}

}  // namespace nocw::power
