// Energy/timing back-annotation tables (DESIGN.md §4 substitution for the
// paper's Synopsys DC / HSPICE / CACTI flow).
//
// The paper's methodology synthesizes the PE and router at 45 nm, extracts
// per-event energies, and back-annotates them onto the cycle-accurate
// simulator; memory energy/timing comes from CACTI. We keep exactly that
// structure: the simulator counts events (flit hops, buffer accesses, MACs,
// SRAM/DRAM words) and this module converts counts plus elapsed time into
// the eight Fig. 10 energy components. Constants are 45 nm-plausible and
// chosen so the Fig. 2 breakdown shape holds (main memory dominates latency;
// communication + main memory dominate energy); absolute joules are not
// calibrated to the authors' silicon.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace nocw::power {

using units::Joules;
using units::Milliwatts;
using units::Picojoules;

/// Per-event dynamic energies in picojoules and leakage powers in milliwatts.
/// The strong types make the table's scale part of its interface: a pJ value
/// cannot reach an exported joule without going through units::to_joules.
struct EnergyTable {
  // --- NoC (per 64-bit flit event) ---
  Picojoules router_traversal_pj{8.0};  ///< crossbar + arbitration per flit
  Picojoules link_traversal_pj{4.0};    ///< 1 mm inter-router wire per flit
  Picojoules buffer_write_pj{2.0};
  Picojoules buffer_read_pj{1.5};
  Picojoules crc_pj{0.3};               ///< CRC-32 generator/checker per flit
  Milliwatts router_leak_mw{0.9};       ///< per router

  // --- PE compute ---
  Picojoules mac_pj{2.0};               ///< one multiply-accumulate
  Picojoules decompress_pj{0.4};        ///< one accumulate step of Fig. 6
  Milliwatts pe_leak_mw{1.6};           ///< per PE datapath

  // --- Local memory (per 64-bit word; 8 KB SRAM, CACTI-like) ---
  Picojoules sram_read_pj{1.6};
  Picojoules sram_write_pj{1.8};
  Milliwatts sram_leak_mw{0.25};        ///< per PE local SRAM

  // --- Main memory (per 64-bit word over the MI) ---
  Picojoules dram_access_pj{400.0};     ///< read or write, interface included
  Milliwatts dram_background_mw{60.0};  ///< whole DRAM subsystem
};

/// Dynamic + leakage split for one subsystem (joules).
struct EnergyComponent {
  Joules dynamic_j;
  Joules leakage_j;
  [[nodiscard]] Joules total() const noexcept { return dynamic_j + leakage_j; }

  EnergyComponent& operator+=(const EnergyComponent& o) noexcept {
    dynamic_j += o.dynamic_j;
    leakage_j += o.leakage_j;
    return *this;
  }

  /// Invariant: joules are finite and non-negative.
  void check_invariants() const;
};

/// The Fig. 10 energy breakdown: four subsystems x (dynamic, leakage).
struct EnergyBreakdown {
  EnergyComponent communication;
  EnergyComponent computation;
  EnergyComponent local_memory;
  EnergyComponent main_memory;

  [[nodiscard]] Joules total() const noexcept {
    return communication.total() + computation.total() +
           local_memory.total() + main_memory.total();
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) noexcept {
    communication += o.communication;
    computation += o.computation;
    local_memory += o.local_memory;
    main_memory += o.main_memory;
    return *this;
  }

  /// Invariant: every component's joules are finite and non-negative.
  void check_invariants() const;
};

/// Event counts accumulated by the accelerator simulator for one phase.
struct EventCounts {
  std::uint64_t router_traversals = 0;
  std::uint64_t link_traversals = 0;
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  /// Flits through CRC generate/check logic (zero unless packet protection
  /// is on, so unprotected runs charge no protection energy).
  std::uint64_t crc_flit_events = 0;
  std::uint64_t macs = 0;
  std::uint64_t decompress_steps = 0;
  std::uint64_t sram_reads = 0;   ///< 64-bit words
  std::uint64_t sram_writes = 0;  ///< 64-bit words
  std::uint64_t dram_accesses = 0;  ///< 64-bit words

  /// Guarded accumulate: every field grows monotonically and a 64-bit wrap
  /// throws nocw::CheckError instead of silently corrupting the energy
  /// annotation downstream.
  EventCounts& operator+=(const EventCounts& o);
};

struct PlatformShape {
  int routers = 16;
  int pes = 12;
};

/// Convert event counts + elapsed time into the Fig. 10 breakdown.
/// `seconds` is the simulated time the phase occupied (leakage integrates
/// it); the strong type makes passing a cycle count here a compile error.
EnergyBreakdown annotate(const EventCounts& events, units::Seconds seconds,
                         const EnergyTable& table, const PlatformShape& shape);

}  // namespace nocw::power
