// Analytic SRAM/DRAM model standing in for CACTI (DESIGN.md §4).
//
// CACTI derives access energy, leakage and timing from capacity, word width
// and technology. We reproduce the first-order scaling laws it exhibits at
// 45 nm: access energy grows ~ sqrt(capacity) (bitline/wordline length),
// leakage grows linearly with capacity, and latency grows with log2 of the
// capacity. The constants are pinned so an 8 KB, 64-bit SRAM lands at the
// EnergyTable defaults used by the accelerator.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace nocw::power {

struct MemoryEstimate {
  units::Picojoules read_energy_pj;   ///< per word
  units::Picojoules write_energy_pj;  ///< per word
  units::Milliwatts leakage_mw;       ///< whole macro
  units::Cycles access_cycles{1};     ///< at 1 GHz
};

/// On-chip SRAM estimate for `capacity_bytes` with `word_bits` ports.
MemoryEstimate sram_estimate(std::uint64_t capacity_bytes, int word_bits);

/// Off-chip DRAM estimate (per-word interface energy dominates; capacity
/// affects background power only).
MemoryEstimate dram_estimate(std::uint64_t capacity_bytes, int word_bits);

}  // namespace nocw::power
