// Procedural MNIST-like digit dataset (DESIGN.md §4 substitution).
//
// Each sample is a 32x32 grayscale rendering of a digit glyph (stroke
// skeletons with anti-aliased thickness) under a random affine jitter
// (translation, scale, rotation), stroke-intensity variation and additive
// pixel noise. The generator is fully deterministic from a seed, so train
// and test splits are reproducible; using disjoint seeds yields disjoint
// i.i.d. samples from the same distribution. LeNet-5 trained on this data
// reaches the high-90s top-1 accuracy regime the paper's LeNet experiments
// operate in.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nocw::nn {

struct Dataset {
  Tensor images;            ///< (N, 32, 32, 1), values in [0, 1]
  std::vector<int> labels;  ///< N entries, 0..9

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(labels.size());
  }
};

/// Generate `n` labeled digit images. Labels cycle 0..9 so classes are
/// balanced for any n.
Dataset make_digits(int n, std::uint64_t seed);

/// Render a single digit (0..9) into a 32x32 image with the given jitter
/// randomness. Exposed for tests and examples.
Tensor render_digit(int digit, Xoshiro256pp& rng);

}  // namespace nocw::nn
