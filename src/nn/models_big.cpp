// ResNet50 and Inception-v3 builders, plus the zoo registry.
#include <memory>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/models_util.hpp"

namespace nocw::nn {

using detail::conv_bn_relu;

namespace {

/// ResNet bottleneck: 1x1 (a) -> 3x3 (a) -> 1x1 (4a), each conv_bn, summed
/// with a shortcut (projection conv when `project`), then ReLU.
int bottleneck(Graph& g, const std::string& name, int from, int cin, int a,
               int stride, bool project) {
  const int cout = 4 * a;
  int n = conv_bn_relu(g, name + "_1x1a", from, cin, a, 1, 1, stride,
                       Padding::Valid);
  n = conv_bn_relu(g, name + "_3x3", n, a, a, 3, 3, 1, Padding::Same);
  // Last conv has no ReLU before the residual add.
  int main_out = g.add(std::make_unique<Conv2D>(name + "_1x1b", a, cout, 1, 1,
                                                1, Padding::Valid),
                       {n});
  main_out = g.add(std::make_unique<BatchNorm>(name + "_1x1b_bn", cout),
                   {main_out});
  int shortcut = from;
  if (project) {
    shortcut = g.add(std::make_unique<Conv2D>(name + "_proj", cin, cout, 1, 1,
                                              stride, Padding::Valid),
                     {from});
    shortcut = g.add(std::make_unique<BatchNorm>(name + "_proj_bn", cout),
                     {shortcut});
  }
  const int sum =
      g.add(std::make_unique<Add>(name + "_add"), {main_out, shortcut});
  return g.add(std::make_unique<ReLU>(name + "_relu"), {sum});
}

}  // namespace

Model make_resnet50(std::uint64_t seed) {
  Model m;
  m.name = "ResNet50";
  m.input_size = 224;
  m.input_channels = 3;
  m.num_classes = 1000;
  m.selected_layer = "fc1000";

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 224, 224, 3}));
  n = conv_bn_relu(g, "conv1", n, 3, 64, 7, 7, 2, Padding::Same);  // 112x112
  n = g.add(std::make_unique<MaxPool>("pool1", 3, 2, Padding::Same), {n});

  struct Stage {
    int a;
    int blocks;
    int stride;  // stride of the first (projection) block
  };
  const Stage stages[] = {{64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2}};
  int cin = 64;
  int si = 2;
  for (const Stage& s : stages) {
    for (int b = 0; b < s.blocks; ++b) {
      const std::string name =
          "res" + std::to_string(si) + static_cast<char>('a' + b);
      const bool project = (b == 0);
      const int stride = (b == 0) ? s.stride : 1;
      n = bottleneck(g, name, n, cin, s.a, stride, project);
      cin = 4 * s.a;
    }
    ++si;
  }
  n = g.add(std::make_unique<GlobalAvgPool>("gap"), {n});  // (N, 2048)
  n = g.add(std::make_unique<Dense>("fc1000", 2048, 1000), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  init_graph(g, seed);
  return m;
}

namespace {

/// Inception block A (mixed0..2 at 35x35).
int inception_a(Graph& g, const std::string& name, int from, int cin,
                int pool_channels) {
  const int b1 = conv_bn_relu(g, name + "_1x1", from, cin, 64, 1, 1, 1,
                              Padding::Same, false, false);
  int b2 = conv_bn_relu(g, name + "_5x5a", from, cin, 48, 1, 1, 1,
                        Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_5x5b", b2, 48, 64, 5, 5, 1, Padding::Same, false, false);
  int b3 = conv_bn_relu(g, name + "_3x3a", from, cin, 64, 1, 1, 1,
                        Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_3x3b", b3, 64, 96, 3, 3, 1, Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_3x3c", b3, 96, 96, 3, 3, 1, Padding::Same, false, false);
  int b4 = g.add(std::make_unique<AvgPool>(name + "_pool", 3, 1,
                                           Padding::Same),
                 {from});
  b4 = conv_bn_relu(g, name + "_poolproj", b4, cin, pool_channels, 1, 1, 1,
                    Padding::Same, false, false);
  return g.add(std::make_unique<Concat>(name), {b1, b2, b3, b4});
}

/// Reduction A (mixed3: 35x35 -> 17x17).
int reduction_a(Graph& g, const std::string& name, int from, int cin) {
  const int b1 = conv_bn_relu(g, name + "_3x3", from, cin, 384, 3, 3, 2,
                              Padding::Valid, false, false);
  int b2 = conv_bn_relu(g, name + "_dbl_a", from, cin, 64, 1, 1, 1,
                        Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_dbl_b", b2, 64, 96, 3, 3, 1, Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_dbl_c", b2, 96, 96, 3, 3, 2, Padding::Valid, false, false);
  const int b3 =
      g.add(std::make_unique<MaxPool>(name + "_pool", 3, 2), {from});
  return g.add(std::make_unique<Concat>(name), {b1, b2, b3});
}

/// Inception block B (mixed4..7 at 17x17) with 7x1/1x7 factorized convs.
int inception_b(Graph& g, const std::string& name, int from, int cin, int c) {
  const int b1 = conv_bn_relu(g, name + "_1x1", from, cin, 192, 1, 1, 1,
                              Padding::Same, false, false);
  int b2 = conv_bn_relu(g, name + "_7x7a", from, cin, c, 1, 1, 1,
                        Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_7x7b", b2, c, c, 1, 7, 1, Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_7x7c", b2, c, 192, 7, 1, 1, Padding::Same, false, false);
  int b3 = conv_bn_relu(g, name + "_dbl_a", from, cin, c, 1, 1, 1,
                        Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_dbl_b", b3, c, c, 7, 1, 1, Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_dbl_c", b3, c, c, 1, 7, 1, Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_dbl_d", b3, c, c, 7, 1, 1, Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_dbl_e", b3, c, 192, 1, 7, 1, Padding::Same, false, false);
  int b4 = g.add(std::make_unique<AvgPool>(name + "_pool", 3, 1,
                                           Padding::Same),
                 {from});
  b4 = conv_bn_relu(g, name + "_poolproj", b4, cin, 192, 1, 1, 1,
                    Padding::Same, false, false);
  return g.add(std::make_unique<Concat>(name), {b1, b2, b3, b4});
}

/// Reduction B (mixed8: 17x17 -> 8x8).
int reduction_b(Graph& g, const std::string& name, int from, int cin) {
  int b1 = conv_bn_relu(g, name + "_3x3a", from, cin, 192, 1, 1, 1,
                        Padding::Same, false, false);
  b1 = conv_bn_relu(g, name + "_3x3b", b1, 192, 320, 3, 3, 2, Padding::Valid, false, false);
  int b2 = conv_bn_relu(g, name + "_7x7a", from, cin, 192, 1, 1, 1,
                        Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_7x7b", b2, 192, 192, 1, 7, 1, Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_7x7c", b2, 192, 192, 7, 1, 1, Padding::Same, false, false);
  b2 = conv_bn_relu(g, name + "_7x7d", b2, 192, 192, 3, 3, 2, Padding::Valid, false, false);
  const int b3 =
      g.add(std::make_unique<MaxPool>(name + "_pool", 3, 2), {from});
  return g.add(std::make_unique<Concat>(name), {b1, b2, b3});
}

/// Inception block C (mixed9..10 at 8x8) with split 1x3/3x1 branches.
int inception_c(Graph& g, const std::string& name, int from, int cin) {
  const int b1 = conv_bn_relu(g, name + "_1x1", from, cin, 320, 1, 1, 1,
                              Padding::Same, false, false);
  const int b2root = conv_bn_relu(g, name + "_3x3", from, cin, 384, 1, 1, 1,
                                  Padding::Same, false, false);
  const int b2a = conv_bn_relu(g, name + "_3x3_1x3", b2root, 384, 384, 1, 3,
                               1, Padding::Same, false, false);
  const int b2b = conv_bn_relu(g, name + "_3x3_3x1", b2root, 384, 384, 3, 1,
                               1, Padding::Same, false, false);
  const int b2 =
      g.add(std::make_unique<Concat>(name + "_3x3_concat"), {b2a, b2b});
  int b3 = conv_bn_relu(g, name + "_dbl_a", from, cin, 448, 1, 1, 1,
                        Padding::Same, false, false);
  b3 = conv_bn_relu(g, name + "_dbl_b", b3, 448, 384, 3, 3, 1, Padding::Same, false, false);
  const int b3a = conv_bn_relu(g, name + "_dbl_1x3", b3, 384, 384, 1, 3, 1,
                               Padding::Same, false, false);
  const int b3b = conv_bn_relu(g, name + "_dbl_3x1", b3, 384, 384, 3, 1, 1,
                               Padding::Same, false, false);
  const int b3c =
      g.add(std::make_unique<Concat>(name + "_dbl_concat"), {b3a, b3b});
  int b4 = g.add(std::make_unique<AvgPool>(name + "_pool", 3, 1,
                                           Padding::Same),
                 {from});
  b4 = conv_bn_relu(g, name + "_poolproj", b4, cin, 192, 1, 1, 1,
                    Padding::Same, false, false);
  return g.add(std::make_unique<Concat>(name), {b1, b2, b3c, b4});
}

}  // namespace

Model make_inception_v3(std::uint64_t seed) {
  Model m;
  m.name = "Inception-v3";
  m.input_size = 299;
  m.input_channels = 3;
  m.num_classes = 1000;
  m.selected_layer = "pred";

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 299, 299, 3}));
  // Stem: 299 -> 35x35x192.
  n = conv_bn_relu(g, "stem_conv1", n, 3, 32, 3, 3, 2, Padding::Valid, false, false);
  n = conv_bn_relu(g, "stem_conv2", n, 32, 32, 3, 3, 1, Padding::Valid, false, false);
  n = conv_bn_relu(g, "stem_conv3", n, 32, 64, 3, 3, 1, Padding::Same, false, false);
  n = g.add(std::make_unique<MaxPool>("stem_pool1", 3, 2), {n});
  n = conv_bn_relu(g, "stem_conv4", n, 64, 80, 1, 1, 1, Padding::Valid, false, false);
  n = conv_bn_relu(g, "stem_conv5", n, 80, 192, 3, 3, 1, Padding::Valid, false, false);
  n = g.add(std::make_unique<MaxPool>("stem_pool2", 3, 2), {n});

  n = inception_a(g, "mixed0", n, 192, 32);  // -> 256
  n = inception_a(g, "mixed1", n, 256, 64);  // -> 288
  n = inception_a(g, "mixed2", n, 288, 64);  // -> 288
  n = reduction_a(g, "mixed3", n, 288);      // -> 768 @ 17x17
  n = inception_b(g, "mixed4", n, 768, 128);
  n = inception_b(g, "mixed5", n, 768, 160);
  n = inception_b(g, "mixed6", n, 768, 160);
  n = inception_b(g, "mixed7", n, 768, 192);
  n = reduction_b(g, "mixed8", n, 768);      // -> 1280 @ 8x8
  n = inception_c(g, "mixed9", n, 1280);     // -> 2048
  n = inception_c(g, "mixed10", n, 2048);    // -> 2048
  n = g.add(std::make_unique<GlobalAvgPool>("gap"), {n});
  n = g.add(std::make_unique<Dense>("pred", 2048, 1000), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  init_graph(g, seed);
  return m;
}

const std::vector<std::string>& model_names() {
  static const std::vector<std::string> kNames = {
      "LeNet-5",   "AlexNet",      "VGG-16",
      "MobileNet", "Inception-v3", "ResNet50"};
  return kNames;
}

Model make_model(const std::string& name, std::uint64_t seed) {
  if (name == "LeNet-5") return make_lenet5(seed);
  if (name == "AlexNet") return make_alexnet(seed);
  if (name == "VGG-16") return make_vgg16(seed);
  if (name == "MobileNet") return make_mobilenet(seed);
  if (name == "Inception-v3") return make_inception_v3(seed);
  if (name == "ResNet50") return make_resnet50(seed);
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace nocw::nn
