#include "nn/init.hpp"

#include <cmath>

namespace nocw::nn {

namespace {

struct Fan {
  double in = 1.0;
  double out = 1.0;
};

Fan fan_of(Layer& layer) {
  switch (layer.type()) {
    case LayerType::Conv2D: {
      auto& c = static_cast<Conv2D&>(layer);
      const double window = static_cast<double>(c.kernel_h()) * c.kernel_w();
      return {window * c.in_channels(), window * c.out_channels()};
    }
    case LayerType::DepthwiseConv2D: {
      auto& c = static_cast<DepthwiseConv2D&>(layer);
      const double window = static_cast<double>(c.kernel_h()) * c.kernel_w();
      return {window, window};
    }
    case LayerType::Dense: {
      auto& d = static_cast<Dense&>(layer);
      return {static_cast<double>(d.in_features()),
              static_cast<double>(d.out_features())};
    }
    default:
      return {};
  }
}

}  // namespace

void init_layer(Layer& layer, Xoshiro256pp& rng, InitScheme scheme,
                InitDistribution dist) {
  if (layer.type() == LayerType::BatchNorm) {
    auto& bn = static_cast<BatchNorm&>(layer);
    for (auto& g : bn.kernel()) g = static_cast<float>(rng.normal(1.0, 0.08));
    for (auto& b : bn.bias()) b = static_cast<float>(rng.normal(0.0, 0.05));
    for (auto& m : bn.moving_mean()) {
      m = static_cast<float>(rng.normal(0.0, 0.1));
    }
    for (auto& v : bn.moving_var()) {
      v = static_cast<float>(std::abs(rng.normal(1.0, 0.1)) + 0.1);
    }
    return;
  }
  const Fan fan = fan_of(layer);
  const double stddev =
      scheme == InitScheme::HeNormal
          ? std::sqrt(2.0 / fan.in)
          : std::sqrt(2.0 / (fan.in + fan.out));
  if (dist == InitDistribution::Gaussian) {
    for (auto& w : layer.kernel()) {
      w = static_cast<float>(rng.normal(0.0, stddev));
    }
  } else {
    // Laplacian with the same fan-scaled stddev (see InitDistribution docs).
    const double b_scale = stddev / std::sqrt(2.0);
    for (auto& w : layer.kernel()) {
      const double u = rng.uniform() - 0.5;
      const double mag = -b_scale * std::log(1.0 - 2.0 * std::abs(u));
      w = static_cast<float>(u < 0 ? -mag : mag);
    }
  }
  for (auto& b : layer.bias()) b = 0.0F;
}

void init_graph(Graph& graph, std::uint64_t seed, InitScheme scheme,
                InitDistribution dist) {
  Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    init_layer(graph.layer(static_cast<int>(i)), rng, scheme, dist);
  }
}

}  // namespace nocw::nn
