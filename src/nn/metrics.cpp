#include "nn/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nocw::nn {

int argmax(std::span<const float> scores) {
  if (scores.empty()) throw std::invalid_argument("argmax of empty row");
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<int> topk(std::span<const float> scores, int k) {
  const int n = static_cast<int>(scores.size());
  k = std::min(k, n);
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

bool in_topk(std::span<const float> scores, int label, int k) {
  const auto best = topk(scores, k);
  return std::find(best.begin(), best.end(), label) != best.end();
}

double topk_overlap(std::span<const float> a, std::span<const float> b,
                    int k) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("topk_overlap row size mismatch");
  }
  const auto ta = topk(a, k);
  auto tb = topk(b, k);
  std::sort(tb.begin(), tb.end());
  int hits = 0;
  for (int i : ta) {
    if (std::binary_search(tb.begin(), tb.end(), i)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ta.size());
}

namespace {
std::span<const float> row(const Tensor& t, int i) {
  const int c = t.dim(1);
  return t.data().subspan(static_cast<std::size_t>(i) * c,
                          static_cast<std::size_t>(c));
}
}  // namespace

double top1_accuracy(const Tensor& scores, std::span<const int> labels) {
  return topk_accuracy(scores, labels, 1);
}

double topk_accuracy(const Tensor& scores, std::span<const int> labels,
                     int k) {
  if (scores.rank() != 2 ||
      static_cast<std::size_t>(scores.dim(0)) != labels.size()) {
    throw std::invalid_argument("topk_accuracy shape mismatch");
  }
  if (labels.empty()) return 0.0;
  int hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (in_topk(row(scores, static_cast<int>(i)), labels[i], k)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double topk_retention(const Tensor& baseline, const Tensor& outputs, int k) {
  if (baseline.shape() != outputs.shape() || baseline.rank() != 2) {
    throw std::invalid_argument("topk_retention shape mismatch");
  }
  const int n = baseline.dim(0);
  if (n == 0) return 0.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const int label = argmax(row(baseline, i));
    if (in_topk(row(outputs, i), label, k)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double mean_topk_agreement(const Tensor& a, const Tensor& b, int k) {
  if (a.shape() != b.shape() || a.rank() != 2) {
    throw std::invalid_argument("mean_topk_agreement shape mismatch");
  }
  const int n = a.dim(0);
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += topk_overlap(row(a, i), row(b, i), k);
  }
  return acc / static_cast<double>(n);
}

}  // namespace nocw::nn
