// Static DAG of layers (the model container for the zoo).
//
// Nodes are appended in topological order (every input edge must point to an
// already-added node), which makes execution a single in-order sweep. The
// graph supports the penultimate-activation caching trick used by the
// evaluation flow: because compression perturbs exactly one layer, the
// expensive prefix up to that layer is computed once per probe input and
// only the tail is replayed per δ (see forward_tail / capture_input_of).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace nocw::nn {

class Graph {
 public:
  struct Node {
    LayerPtr layer;
    std::vector<int> inputs;  ///< indices of producer nodes (empty for input)
  };

  /// Append a node; returns its index. All `input_nodes` must be < the new
  /// index (topological insertion).
  int add(LayerPtr layer, std::vector<int> input_nodes = {});

  /// Convenience for linear chains: wires to the previously added node.
  int add_sequential(LayerPtr layer);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const Node& node(int i) const { return nodes_.at(i); }
  [[nodiscard]] Layer& layer(int i) { return *nodes_.at(i).layer; }
  [[nodiscard]] const Layer& layer(int i) const { return *nodes_.at(i).layer; }

  /// Index of the node whose layer has this name; -1 if absent.
  [[nodiscard]] int find(const std::string& name) const noexcept;

  /// Deep copy: every layer's inference state is cloned, edges preserved.
  /// Parallel evaluation sweeps give each thread its own replica so weight
  /// mutation (noise injection, δ-compression) needs no locking.
  [[nodiscard]] Graph clone() const;

  /// Full forward pass; returns the last node's output. When the global
  /// thread pool has more than one lane and the batch has 2+ samples, the
  /// batch is split into contiguous sub-batches executed concurrently;
  /// samples are independent, so outputs are bit-identical to the serial
  /// sweep for any NOCW_THREADS.
  [[nodiscard]] Tensor forward(const Tensor& input) const;

  /// Forward pass that also returns the (single) input tensor feeding node
  /// `capture`: the cached activation for the δ-sweep replay. Requires node
  /// `capture` to have exactly one producer.
  [[nodiscard]] std::pair<Tensor, Tensor> forward_capturing(
      const Tensor& input, int capture) const;

  /// Replay only nodes [from, end) given the captured input of node `from`.
  /// Every replayed node may consume only the captured tensor or outputs of
  /// other replayed nodes (true for the tail-of-network layers the selection
  /// policy picks); violations throw.
  [[nodiscard]] Tensor forward_tail(const Tensor& captured_input,
                                    int from) const;

  /// Sum of param_count() over all layers.
  [[nodiscard]] std::size_t total_params() const noexcept;

  /// Indices of nodes whose layer has a non-empty kernel, in graph order.
  [[nodiscard]] std::vector<int> parameterized_nodes() const;

 private:
  [[nodiscard]] Tensor forward_serial(const Tensor& input) const;
  [[nodiscard]] Tensor forward_batched(const Tensor& input) const;

  std::vector<Node> nodes_;
};

}  // namespace nocw::nn
