#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/gemm.hpp"
#include "util/thread_pool.hpp"

namespace nocw::nn {

const char* layer_type_name(LayerType t) noexcept {
  switch (t) {
    case LayerType::Input: return "Input";
    case LayerType::Conv2D: return "Conv2D";
    case LayerType::DepthwiseConv2D: return "DepthwiseConv2D";
    case LayerType::Dense: return "Dense";
    case LayerType::MaxPool: return "MaxPool";
    case LayerType::AvgPool: return "AvgPool";
    case LayerType::GlobalAvgPool: return "GlobalAvgPool";
    case LayerType::ReLU: return "ReLU";
    case LayerType::ReLU6: return "ReLU6";
    case LayerType::Softmax: return "Softmax";
    case LayerType::Flatten: return "Flatten";
    case LayerType::BatchNorm: return "BatchNorm";
    case LayerType::Add: return "Add";
    case LayerType::Concat: return "Concat";
  }
  return "?";
}

int conv_out_extent(int in, int window, int stride, Padding padding) noexcept {
  if (padding == Padding::Same) return (in + stride - 1) / stride;
  return (in - window) / stride + 1;
}

int same_pad_total(int in, int window, int stride) noexcept {
  const int out = (in + stride - 1) / stride;
  return std::max((out - 1) * stride + window - in, 0);
}

namespace {

const Tensor& single_input(std::span<const Tensor* const> inputs) {
  if (inputs.size() != 1 || inputs[0] == nullptr) {
    throw std::invalid_argument("layer expects exactly one input");
  }
  return *inputs[0];
}

void require_rank(const Tensor& t, int rank, const char* what) {
  if (t.rank() != rank) {
    throw std::invalid_argument(std::string(what) + ": expected rank " +
                                std::to_string(rank) + ", got " +
                                t.shape_string());
  }
}

/// Chunk size for parallelizing a conv's output-row loop: coarse enough to
/// amortize dispatch, fine enough to balance. Chunk boundaries never affect
/// results (each output row is written by exactly one chunk).
std::size_t row_grain(int rows) {
  const unsigned lanes = global_thread_count();
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(rows) / (static_cast<std::size_t>(lanes) * 4));
}

}  // namespace

// --- InputLayer ------------------------------------------------------------

Tensor InputLayer::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  if (static_cast<int>(shape_.size()) != in.rank()) {
    throw std::invalid_argument("input rank mismatch for " + name());
  }
  for (std::size_t i = 1; i < shape_.size(); ++i) {
    if (shape_[i] != in.shape()[i]) {
      throw std::invalid_argument("input shape mismatch for " + name() +
                                  ": got " + in.shape_string());
    }
  }
  return in;  // pass-through copy
}

// --- Conv2D ------------------------------------------------------------------

Conv2D::Conv2D(std::string name, int in_channels, int out_channels,
               int kernel_h, int kernel_w, int stride, Padding padding,
               bool use_bias)
    : Layer(std::move(name)), cin_(in_channels), cout_(out_channels),
      kh_(kernel_h), kw_(kernel_w), stride_(stride), padding_(padding),
      kernel_(static_cast<std::size_t>(kernel_h) * kernel_w * in_channels *
              out_channels),
      bias_(use_bias ? static_cast<std::size_t>(out_channels) : 0) {}

Tensor Conv2D::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 4, "Conv2D");
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  if (c != cin_) throw std::invalid_argument("Conv2D channel mismatch");
  const int oh = conv_out_extent(h, kh_, stride_, padding_);
  const int ow = conv_out_extent(w, kw_, stride_, padding_);
  const int pad_top =
      padding_ == Padding::Same ? same_pad_total(h, kh_, stride_) / 2 : 0;
  const int pad_left =
      padding_ == Padding::Same ? same_pad_total(w, kw_, stride_) / 2 : 0;

  Tensor out({n, oh, ow, cout_});
  const std::size_t k = static_cast<std::size_t>(kh_) * kw_ * cin_;
  std::vector<float> cols(static_cast<std::size_t>(oh) * ow * k);

  for (int img = 0; img < n; ++img) {
    // im2col: one row of `cols` per output position. Output rows are
    // disjoint `cols` slices, so the y loop parallelizes without
    // synchronization (and runs inline when already inside a parallel
    // region, e.g. a batched Graph::forward).
    global_pool().parallel_for(
        0, static_cast<std::size_t>(oh), row_grain(oh),
        [&](std::size_t y0, std::size_t y1, unsigned /*lane*/) {
          for (std::size_t y = y0; y < y1; ++y) {
            float* col = cols.data() + y * ow * k;
            for (int x = 0; x < ow; ++x) {
              for (int ky = 0; ky < kh_; ++ky) {
                const int iy =
                    static_cast<int>(y) * stride_ - pad_top + ky;
                float* dst = col + (static_cast<std::size_t>(ky) * kw_) * cin_;
                if (iy < 0 || iy >= h) {
                  std::memset(dst, 0, static_cast<std::size_t>(kw_) * cin_ *
                                          sizeof(float));
                  continue;
                }
                const int ix0 = x * stride_ - pad_left;
                if (ix0 >= 0 && ix0 + kw_ <= w) {
                  std::memcpy(dst, &in.at(img, iy, ix0, 0),
                              static_cast<std::size_t>(kw_) * cin_ *
                                  sizeof(float));
                } else {
                  for (int kx = 0; kx < kw_; ++kx) {
                    const int ix = ix0 + kx;
                    float* d = dst + static_cast<std::size_t>(kx) * cin_;
                    if (ix < 0 || ix >= w) {
                      std::memset(d, 0, static_cast<std::size_t>(cin_) *
                                            sizeof(float));
                    } else {
                      std::memcpy(d, &in.at(img, iy, ix, 0),
                                  static_cast<std::size_t>(cin_) *
                                      sizeof(float));
                    }
                  }
                }
              }
              col += k;
            }
          }
        });
    float* dst = &out.at(img, 0, 0, 0);
    gemm(cols.data(), kernel_.data(), dst,
         static_cast<std::size_t>(oh) * ow, k,
         static_cast<std::size_t>(cout_));
    if (!bias_.empty()) {
      for (std::size_t pos = 0; pos < static_cast<std::size_t>(oh) * ow;
           ++pos) {
        float* row = dst + pos * cout_;
        for (int co = 0; co < cout_; ++co) row[co] += bias_[co];
      }
    }
  }
  return out;
}

std::vector<Tensor> Conv2D::backward(std::span<const Tensor* const> inputs,
                                     const Tensor& grad_out) {
  if (padding_ != Padding::Valid) {
    throw std::logic_error("Conv2D::backward supports Valid padding only");
  }
  const Tensor& in = single_input(inputs);
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2);
  const int oh = grad_out.dim(1), ow = grad_out.dim(2);
  if (kernel_grad_.empty()) kernel_grad_.resize(kernel_.size(), 0.0F);
  if (bias_grad_.empty()) bias_grad_.resize(bias_.size(), 0.0F);

  Tensor grad_in({n, h, w, cin_});
  for (int img = 0; img < n; ++img) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        const float* go = &grad_out.at(img, y, x, 0);
        if (!bias_grad_.empty()) {
          for (int co = 0; co < cout_; ++co) bias_grad_[co] += go[co];
        }
        for (int ky = 0; ky < kh_; ++ky) {
          const int iy = y * stride_ + ky;
          for (int kx = 0; kx < kw_; ++kx) {
            const int ix = x * stride_ + kx;
            const float* iv = &in.at(img, iy, ix, 0);
            float* gv = &grad_in.at(img, iy, ix, 0);
            float* kbase =
                kernel_grad_.data() +
                ((static_cast<std::size_t>(ky) * kw_ + kx) * cin_) * cout_;
            const float* wbase =
                kernel_.data() +
                ((static_cast<std::size_t>(ky) * kw_ + kx) * cin_) * cout_;
            for (int ci = 0; ci < cin_; ++ci) {
              const float ival = iv[ci];
              float gacc = 0.0F;
              float* krow = kbase + static_cast<std::size_t>(ci) * cout_;
              const float* wrow = wbase + static_cast<std::size_t>(ci) * cout_;
              for (int co = 0; co < cout_; ++co) {
                krow[co] += ival * go[co];
                gacc += wrow[co] * go[co];
              }
              gv[ci] += gacc;
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

void Conv2D::zero_grads() {
  std::fill(kernel_grad_.begin(), kernel_grad_.end(), 0.0F);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0F);
}

void Conv2D::sgd_step(float lr) {
  if (kernel_grad_.empty()) return;
  for (std::size_t i = 0; i < kernel_.size(); ++i) {
    kernel_[i] -= lr * kernel_grad_[i];
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= lr * bias_grad_[i];
  }
}

// --- DepthwiseConv2D ---------------------------------------------------------

DepthwiseConv2D::DepthwiseConv2D(std::string name, int channels, int kernel_h,
                                 int kernel_w, int stride, Padding padding,
                                 bool use_bias)
    : Layer(std::move(name)), channels_(channels), kh_(kernel_h),
      kw_(kernel_w), stride_(stride), padding_(padding),
      kernel_(static_cast<std::size_t>(kernel_h) * kernel_w * channels),
      bias_(use_bias ? static_cast<std::size_t>(channels) : 0) {}

Tensor DepthwiseConv2D::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 4, "DepthwiseConv2D");
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  if (c != channels_) {
    throw std::invalid_argument("DepthwiseConv2D channel mismatch");
  }
  const int oh = conv_out_extent(h, kh_, stride_, padding_);
  const int ow = conv_out_extent(w, kw_, stride_, padding_);
  const int pad_top =
      padding_ == Padding::Same ? same_pad_total(h, kh_, stride_) / 2 : 0;
  const int pad_left =
      padding_ == Padding::Same ? same_pad_total(w, kw_, stride_) / 2 : 0;

  Tensor out({n, oh, ow, channels_});
  for (int img = 0; img < n; ++img) {
    // Each output row is written by exactly one chunk: safe, bit-exact
    // parallelism (per-pixel accumulation order is unchanged).
    global_pool().parallel_for(
        0, static_cast<std::size_t>(oh), row_grain(oh),
        [&](std::size_t y0, std::size_t y1, unsigned /*lane*/) {
          for (std::size_t yz = y0; yz < y1; ++yz) {
            const int y = static_cast<int>(yz);
            for (int x = 0; x < ow; ++x) {
              float* o = &out.at(img, y, x, 0);
              if (bias_.empty()) {
                for (int ci = 0; ci < channels_; ++ci) o[ci] = 0.0F;
              } else {
                for (int ci = 0; ci < channels_; ++ci) o[ci] = bias_[ci];
              }
              for (int ky = 0; ky < kh_; ++ky) {
                const int iy = y * stride_ - pad_top + ky;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < kw_; ++kx) {
                  const int ix = x * stride_ - pad_left + kx;
                  if (ix < 0 || ix >= w) continue;
                  const float* iv = &in.at(img, iy, ix, 0);
                  const float* kv =
                      kernel_.data() +
                      (static_cast<std::size_t>(ky) * kw_ + kx) * channels_;
                  for (int ci = 0; ci < channels_; ++ci) {
                    o[ci] += iv[ci] * kv[ci];
                  }
                }
              }
            }
          }
        });
  }
  return out;
}

// --- Dense -------------------------------------------------------------------

Dense::Dense(std::string name, int in_features, int out_features)
    : Layer(std::move(name)), in_(in_features), out_(out_features),
      kernel_(static_cast<std::size_t>(in_features) * out_features),
      bias_(static_cast<std::size_t>(out_features)) {}

Tensor Dense::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 2, "Dense");
  if (in.dim(1) != in_) throw std::invalid_argument("Dense feature mismatch");
  const int n = in.dim(0);
  Tensor out({n, out_});
  gemm(in.raw(), kernel_.data(), out.raw(), static_cast<std::size_t>(n),
       static_cast<std::size_t>(in_), static_cast<std::size_t>(out_));
  for (int i = 0; i < n; ++i) {
    float* row = out.raw() + static_cast<std::size_t>(i) * out_;
    for (int j = 0; j < out_; ++j) row[j] += bias_[j];
  }
  return out;
}

std::vector<Tensor> Dense::backward(std::span<const Tensor* const> inputs,
                                    const Tensor& grad_out) {
  const Tensor& in = single_input(inputs);
  const int n = in.dim(0);
  if (kernel_grad_.empty()) kernel_grad_.resize(kernel_.size(), 0.0F);
  if (bias_grad_.empty()) bias_grad_.resize(bias_.size(), 0.0F);

  Tensor grad_in({n, in_});
  for (int img = 0; img < n; ++img) {
    const float* x = in.raw() + static_cast<std::size_t>(img) * in_;
    const float* go = grad_out.raw() + static_cast<std::size_t>(img) * out_;
    float* gi = grad_in.raw() + static_cast<std::size_t>(img) * in_;
    for (int j = 0; j < out_; ++j) bias_grad_[j] += go[j];
    for (int i = 0; i < in_; ++i) {
      float* krow = kernel_grad_.data() + static_cast<std::size_t>(i) * out_;
      const float* wrow = kernel_.data() + static_cast<std::size_t>(i) * out_;
      const float xv = x[i];
      float acc = 0.0F;
      for (int j = 0; j < out_; ++j) {
        krow[j] += xv * go[j];
        acc += wrow[j] * go[j];
      }
      gi[i] = acc;
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

void Dense::zero_grads() {
  std::fill(kernel_grad_.begin(), kernel_grad_.end(), 0.0F);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0F);
}

void Dense::sgd_step(float lr) {
  if (kernel_grad_.empty()) return;
  for (std::size_t i = 0; i < kernel_.size(); ++i) {
    kernel_[i] -= lr * kernel_grad_[i];
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= lr * bias_grad_[i];
  }
}

// --- Pooling -----------------------------------------------------------------

Tensor MaxPool::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 4, "MaxPool");
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  const int oh = conv_out_extent(h, pool_, stride_, padding_);
  const int ow = conv_out_extent(w, pool_, stride_, padding_);
  const int pad_top =
      padding_ == Padding::Same ? same_pad_total(h, pool_, stride_) / 2 : 0;
  const int pad_left =
      padding_ == Padding::Same ? same_pad_total(w, pool_, stride_) / 2 : 0;
  Tensor out({n, oh, ow, c});
  for (int img = 0; img < n; ++img) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float* o = &out.at(img, y, x, 0);
        for (int ci = 0; ci < c; ++ci) {
          o[ci] = -std::numeric_limits<float>::infinity();
        }
        for (int ky = 0; ky < pool_; ++ky) {
          const int iy = y * stride_ - pad_top + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < pool_; ++kx) {
            const int ix = x * stride_ - pad_left + kx;
            if (ix < 0 || ix >= w) continue;
            const float* iv = &in.at(img, iy, ix, 0);
            for (int ci = 0; ci < c; ++ci) o[ci] = std::max(o[ci], iv[ci]);
          }
        }
      }
    }
  }
  return out;
}

std::vector<Tensor> MaxPool::backward(std::span<const Tensor* const> inputs,
                                      const Tensor& grad_out) {
  if (padding_ != Padding::Valid) {
    throw std::logic_error("MaxPool::backward supports Valid padding only");
  }
  const Tensor& in = single_input(inputs);
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  const int oh = grad_out.dim(1), ow = grad_out.dim(2);
  Tensor grad_in({n, h, w, c});
  for (int img = 0; img < n; ++img) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        for (int ci = 0; ci < c; ++ci) {
          // Route the gradient to the argmax of the window.
          float best = -std::numeric_limits<float>::infinity();
          int by = 0, bx = 0;
          for (int ky = 0; ky < pool_; ++ky) {
            for (int kx = 0; kx < pool_; ++kx) {
              const float v =
                  in.at(img, y * stride_ + ky, x * stride_ + kx, ci);
              if (v > best) {
                best = v;
                by = ky;
                bx = kx;
              }
            }
          }
          grad_in.at(img, y * stride_ + by, x * stride_ + bx, ci) +=
              grad_out.at(img, y, x, ci);
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

Tensor AvgPool::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 4, "AvgPool");
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  const int oh = conv_out_extent(h, pool_, stride_, padding_);
  const int ow = conv_out_extent(w, pool_, stride_, padding_);
  const int pad_top =
      padding_ == Padding::Same ? same_pad_total(h, pool_, stride_) / 2 : 0;
  const int pad_left =
      padding_ == Padding::Same ? same_pad_total(w, pool_, stride_) / 2 : 0;
  Tensor out({n, oh, ow, c});
  for (int img = 0; img < n; ++img) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float* o = &out.at(img, y, x, 0);
        int valid = 0;
        for (int ky = 0; ky < pool_; ++ky) {
          const int iy = y * stride_ - pad_top + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < pool_; ++kx) {
            const int ix = x * stride_ - pad_left + kx;
            if (ix < 0 || ix >= w) continue;
            ++valid;
            const float* iv = &in.at(img, iy, ix, 0);
            for (int ci = 0; ci < c; ++ci) o[ci] += iv[ci];
          }
        }
        const float inv = valid > 0 ? 1.0F / static_cast<float>(valid) : 0.0F;
        for (int ci = 0; ci < c; ++ci) o[ci] *= inv;
      }
    }
  }
  return out;
}

Tensor GlobalAvgPool::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 4, "GlobalAvgPool");
  const int n = in.dim(0), h = in.dim(1), w = in.dim(2), c = in.dim(3);
  Tensor out({n, c});
  const float inv = 1.0F / static_cast<float>(h * w);
  for (int img = 0; img < n; ++img) {
    float* o = out.raw() + static_cast<std::size_t>(img) * c;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float* iv = &in.at(img, y, x, 0);
        for (int ci = 0; ci < c; ++ci) o[ci] += iv[ci];
      }
    }
    for (int ci = 0; ci < c; ++ci) o[ci] *= inv;
  }
  return out;
}

// --- Activations ---------------------------------------------------------------

Tensor ReLU::forward(std::span<const Tensor* const> inputs) const {
  Tensor out = single_input(inputs);
  for (auto& v : out.data()) v = std::max(v, 0.0F);
  return out;
}

std::vector<Tensor> ReLU::backward(std::span<const Tensor* const> inputs,
                                   const Tensor& grad_out) {
  const Tensor& in = single_input(inputs);
  Tensor grad_in = grad_out;
  auto gi = grad_in.data();
  auto iv = in.data();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    if (iv[i] <= 0.0F) gi[i] = 0.0F;
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

Tensor ReLU6::forward(std::span<const Tensor* const> inputs) const {
  Tensor out = single_input(inputs);
  for (auto& v : out.data()) v = std::clamp(v, 0.0F, 6.0F);
  return out;
}

Tensor Softmax::forward(std::span<const Tensor* const> inputs) const {
  const Tensor& in = single_input(inputs);
  require_rank(in, 2, "Softmax");
  Tensor out = in;
  const int n = in.dim(0), c = in.dim(1);
  for (int img = 0; img < n; ++img) {
    float* row = out.raw() + static_cast<std::size_t>(img) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0F;
    for (int j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0F / sum;
    for (int j = 0; j < c; ++j) row[j] *= inv;
  }
  return out;
}

// --- Shape ops --------------------------------------------------------------

Tensor Reshape::forward(std::span<const Tensor* const> inputs) const {
  Tensor out = single_input(inputs);
  std::vector<int> shape;
  shape.push_back(out.dim(0));
  shape.insert(shape.end(), per_sample_.begin(), per_sample_.end());
  out.reshape(std::move(shape));
  return out;
}

Tensor Flatten::forward(std::span<const Tensor* const> inputs) const {
  Tensor out = single_input(inputs);
  const int n = out.dim(0);
  const int features = static_cast<int>(out.size()) / std::max(n, 1);
  out.reshape({n, features});
  return out;
}

std::vector<Tensor> Flatten::backward(std::span<const Tensor* const> inputs,
                                      const Tensor& grad_out) {
  const Tensor& in = single_input(inputs);
  Tensor grad_in = grad_out;
  grad_in.reshape(in.shape());
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

// --- BatchNorm ---------------------------------------------------------------

BatchNorm::BatchNorm(std::string name, int channels, float epsilon)
    : Layer(std::move(name)), eps_(epsilon),
      gamma_(static_cast<std::size_t>(channels), 1.0F),
      beta_(static_cast<std::size_t>(channels), 0.0F),
      mean_(static_cast<std::size_t>(channels), 0.0F),
      var_(static_cast<std::size_t>(channels), 1.0F) {}

Tensor BatchNorm::forward(std::span<const Tensor* const> inputs) const {
  Tensor out = single_input(inputs);
  const int c = out.shape().back();
  if (static_cast<std::size_t>(c) != gamma_.size()) {
    throw std::invalid_argument("BatchNorm channel mismatch");
  }
  // Fold to y = x*scale + shift once per call.
  std::vector<float> scale(gamma_.size());
  std::vector<float> shift(gamma_.size());
  for (std::size_t i = 0; i < gamma_.size(); ++i) {
    scale[i] = gamma_[i] / std::sqrt(var_[i] + eps_);
    shift[i] = beta_[i] - mean_[i] * scale[i];
  }
  auto d = out.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const std::size_t ci = i % gamma_.size();
    d[i] = d[i] * scale[ci] + shift[ci];
  }
  return out;
}

// --- Merging ------------------------------------------------------------------

Tensor Add::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() < 2) throw std::invalid_argument("Add needs >= 2 inputs");
  Tensor out = *inputs[0];
  for (std::size_t k = 1; k < inputs.size(); ++k) {
    const Tensor& rhs = *inputs[k];
    if (rhs.shape() != out.shape()) {
      throw std::invalid_argument("Add shape mismatch");
    }
    auto o = out.data();
    auto r = rhs.data();
    for (std::size_t i = 0; i < o.size(); ++i) o[i] += r[i];
  }
  return out;
}

Tensor Concat::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.empty()) throw std::invalid_argument("Concat needs inputs");
  const Tensor& first = *inputs[0];
  require_rank(first, 4, "Concat");
  const int n = first.dim(0), h = first.dim(1), w = first.dim(2);
  int total_c = 0;
  for (const Tensor* t : inputs) {
    require_rank(*t, 4, "Concat");
    if (t->dim(0) != n || t->dim(1) != h || t->dim(2) != w) {
      throw std::invalid_argument("Concat spatial mismatch");
    }
    total_c += t->dim(3);
  }
  Tensor out({n, h, w, total_c});
  for (int img = 0; img < n; ++img) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        float* o = &out.at(img, y, x, 0);
        for (const Tensor* t : inputs) {
          const int c = t->dim(3);
          std::memcpy(o, &t->at(img, y, x, 0),
                      static_cast<std::size_t>(c) * sizeof(float));
          o += c;
        }
      }
    }
  }
  return out;
}

// --- clone() -----------------------------------------------------------------
// Inference state only: weights, bias, statistics. Gradient buffers start
// empty in the clone (replicas are forward-only).

std::unique_ptr<Layer> InputLayer::clone() const {
  return std::make_unique<InputLayer>(name(), shape_);
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto c = std::make_unique<Conv2D>(name(), cin_, cout_, kh_, kw_, stride_,
                                    padding_, !bias_.empty());
  c->kernel_ = kernel_;
  c->bias_ = bias_;
  return c;
}

std::unique_ptr<Layer> DepthwiseConv2D::clone() const {
  auto c = std::make_unique<DepthwiseConv2D>(name(), channels_, kh_, kw_,
                                             stride_, padding_,
                                             !bias_.empty());
  c->kernel_ = kernel_;
  c->bias_ = bias_;
  return c;
}

std::unique_ptr<Layer> Dense::clone() const {
  auto c = std::make_unique<Dense>(name(), in_, out_);
  c->kernel_ = kernel_;
  c->bias_ = bias_;
  return c;
}

std::unique_ptr<Layer> MaxPool::clone() const {
  return std::make_unique<MaxPool>(name(), pool_, stride_, padding_);
}

std::unique_ptr<Layer> AvgPool::clone() const {
  return std::make_unique<AvgPool>(name(), pool_, stride_, padding_);
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(name());
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>(name());
}

std::unique_ptr<Layer> ReLU6::clone() const {
  return std::make_unique<ReLU6>(name());
}

std::unique_ptr<Layer> Softmax::clone() const {
  return std::make_unique<Softmax>(name());
}

std::unique_ptr<Layer> Reshape::clone() const {
  return std::make_unique<Reshape>(name(), per_sample_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(name());
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto c = std::make_unique<BatchNorm>(
      name(), static_cast<int>(gamma_.size()), eps_);
  c->gamma_ = gamma_;
  c->beta_ = beta_;
  c->mean_ = mean_;
  c->var_ = var_;
  return c;
}

std::unique_ptr<Layer> Add::clone() const {
  return std::make_unique<Add>(name());
}

std::unique_ptr<Layer> Concat::clone() const {
  return std::make_unique<Concat>(name());
}

}  // namespace nocw::nn
