// Internal helpers shared by the model builder translation units.
#pragma once

#include <memory>
#include <string>

#include "nn/graph.hpp"

namespace nocw::nn::detail {

/// conv -> batchnorm -> ReLU (the Keras conv2d_bn building block).
/// Returns the index of the ReLU node. `use_bias=false` matches the Keras
/// MobileNet/Inception blocks where BatchNorm absorbs the bias; ResNet50's
/// Keras definition keeps conv biases, so it passes true.
inline int conv_bn_relu(Graph& g, const std::string& name, int from, int cin,
                        int cout, int kh, int kw, int stride, Padding pad,
                        bool relu6 = false, bool use_bias = true) {
  const int conv = g.add(
      std::make_unique<Conv2D>(name, cin, cout, kh, kw, stride, pad, use_bias),
      {from});
  const int bn = g.add(std::make_unique<BatchNorm>(name + "_bn", cout), {conv});
  if (relu6) {
    return g.add(std::make_unique<ReLU6>(name + "_relu"), {bn});
  }
  return g.add(std::make_unique<ReLU>(name + "_relu"), {bn});
}

/// conv -> ReLU without batch norm (AlexNet / VGG style).
inline int conv_relu(Graph& g, const std::string& name, int from, int cin,
                     int cout, int k, int stride, Padding pad) {
  const int conv = g.add(
      std::make_unique<Conv2D>(name, cin, cout, k, k, stride, pad), {from});
  return g.add(std::make_unique<ReLU>(name + "_relu"), {conv});
}

/// dense -> ReLU.
inline int dense_relu(Graph& g, const std::string& name, int from, int in,
                      int out) {
  const int d = g.add(std::make_unique<Dense>(name, in, out), {from});
  return g.add(std::make_unique<ReLU>(name + "_relu"), {d});
}

}  // namespace nocw::nn::detail
