#include "nn/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nocw::nn {

std::size_t Tensor::shape_size(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("negative tensor extent");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0F) {}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<int> new_shape) {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape changes element count");
  }
  shape_ = std::move(new_shape);
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

}  // namespace nocw::nn
