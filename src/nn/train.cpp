#include "nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "nn/metrics.hpp"
#include "util/rng.hpp"

namespace nocw::nn {

namespace {

/// Verify the graph is a linear chain and return the index of the softmax
/// (which must be the last node).
int validate_chain(const Graph& g) {
  if (g.node_count() < 3) throw std::logic_error("trainer: graph too small");
  for (std::size_t i = 1; i < g.node_count(); ++i) {
    const auto& inputs = g.node(static_cast<int>(i)).inputs;
    if (inputs.size() != 1 || inputs[0] != static_cast<int>(i) - 1) {
      throw std::logic_error("trainer: graph must be a linear chain");
    }
  }
  const int last = static_cast<int>(g.node_count()) - 1;
  if (g.layer(last).type() != LayerType::Softmax) {
    throw std::logic_error("trainer: last layer must be Softmax");
  }
  return last;
}

Tensor slice_batch(const Tensor& images, std::span<const int> order,
                   int begin, int count) {
  std::vector<int> shape = images.shape();
  shape[0] = count;
  Tensor batch(shape);
  const std::size_t stride = images.size() / images.dim(0);
  for (int i = 0; i < count; ++i) {
    const int src = order[static_cast<std::size_t>(begin + i)];
    std::memcpy(batch.raw() + static_cast<std::size_t>(i) * stride,
                images.raw() + static_cast<std::size_t>(src) * stride,
                stride * sizeof(float));
  }
  return batch;
}

}  // namespace

TrainStats train_classifier(Graph& graph, const Dataset& data,
                            const TrainConfig& config) {
  const int softmax_node = validate_chain(graph);
  const int n = data.size();
  TrainStats stats;
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256pp rng(config.shuffle_seed);

  std::vector<Tensor> acts(graph.node_count());
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle.
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<int>(rng.bounded(
          static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }
    double loss_sum = 0.0;
    int correct = 0;
    for (int begin = 0; begin < n; begin += config.batch_size) {
      const int count = std::min(config.batch_size, n - begin);
      const Tensor batch = slice_batch(data.images, order, begin, count);

      // Forward, caching every activation for the backward sweep.
      for (int i = 0; i < static_cast<int>(graph.node_count()); ++i) {
        const Tensor* in = (i == 0) ? &batch : &acts[i - 1];
        const Tensor* ins[1] = {in};
        acts[static_cast<std::size_t>(i)] =
            graph.layer(i).forward(std::span<const Tensor* const>(ins, 1));
      }
      const Tensor& probs = acts[static_cast<std::size_t>(softmax_node)];
      const int classes = probs.dim(1);

      // Softmax cross-entropy gradient at the logits: (p - y) / batch.
      Tensor grad({count, classes});
      for (int i = 0; i < count; ++i) {
        const int label = data.labels[static_cast<std::size_t>(
            order[static_cast<std::size_t>(begin + i)])];
        const float* p = probs.raw() + static_cast<std::size_t>(i) * classes;
        float* gp = grad.raw() + static_cast<std::size_t>(i) * classes;
        for (int c = 0; c < classes; ++c) {
          gp[c] = (p[c] - (c == label ? 1.0F : 0.0F)) /
                  static_cast<float>(count);
        }
        loss_sum -= std::log(std::max(p[label], 1e-12F));
        if (argmax(std::span<const float>(p, static_cast<std::size_t>(
                                                 classes))) == label) {
          ++correct;
        }
      }

      // Backward from the logits node (softmax folded into the loss grad).
      for (int i = 0; i < static_cast<int>(graph.node_count()); ++i) {
        graph.layer(i).zero_grads();
      }
      Tensor g = std::move(grad);
      for (int i = softmax_node - 1; i >= 1; --i) {
        const Tensor* in = (i == 0) ? &batch : &acts[i - 1];
        const Tensor* ins[1] = {in};
        auto grads = graph.layer(i).backward(
            std::span<const Tensor* const>(ins, 1), g);
        g = std::move(grads[0]);
      }
      for (int i = 0; i < static_cast<int>(graph.node_count()); ++i) {
        graph.layer(i).sgd_step(config.learning_rate);
      }
    }
    stats.epoch_loss.push_back(loss_sum / n);
    stats.epoch_accuracy.push_back(static_cast<double>(correct) / n);
  }
  return stats;
}

Tensor predict(const Graph& graph, const Dataset& data) {
  const int n = data.size();
  constexpr int kBatch = 64;
  Tensor all;
  int written = 0;
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int begin = 0; begin < n; begin += kBatch) {
    const int count = std::min(kBatch, n - begin);
    const Tensor batch = slice_batch(data.images, order, begin, count);
    const Tensor out = graph.forward(batch);
    if (written == 0) {
      all = Tensor({n, out.dim(1)});
    }
    std::memcpy(all.raw() + static_cast<std::size_t>(written) * out.dim(1),
                out.raw(), out.size() * sizeof(float));
    written += count;
  }
  return all;
}

double evaluate_top1(const Graph& graph, const Dataset& data) {
  const Tensor probs = predict(graph, data);
  return top1_accuracy(probs, data.labels);
}

}  // namespace nocw::nn
