#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.hpp"

namespace nocw::nn {

namespace {
// Block sizes chosen so an A-panel (kMb x kKb) stays in L1/L2 and the C rows
// being updated (kMb x kNb floats) stay cache-resident even when n is the
// 4096-wide classifier of AlexNet/VGG.
constexpr std::size_t kMb = 64;
constexpr std::size_t kKb = 256;
constexpr std::size_t kNb = 512;

/// Compute rows [i0, i1) of C. Per-element accumulation order is ascending
/// k regardless of the j/k blocking, so any row partition of the M loop
/// produces bit-identical C.
template <bool kSkipZeros>
void gemm_rows(const float* a, const float* b, float* c, std::size_t i0,
               std::size_t i1, std::size_t k, std::size_t n) {
  for (std::size_t ib = i0; ib < i1; ib += kMb) {
    const std::size_t ie = std::min(ib + kMb, i1);
    for (std::size_t p0 = 0; p0 < k; p0 += kKb) {
      const std::size_t p1 = std::min(p0 + kKb, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kNb) {
        const std::size_t jn = std::min(j0 + kNb, n) - j0;
        for (std::size_t i = ib; i < ie; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n + j0;
          for (std::size_t p = p0; p < p1; ++p) {
            const float av = arow[p];
            if constexpr (kSkipZeros) {
              if (av == 0.0F) continue;  // im2col zero padding is common
            }
            const float* brow = b + p * n + j0;
            // Inner loop over n: contiguous FMA chain, auto-vectorized.
            for (std::size_t j = 0; j < jn; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

/// Deterministic density probe: sample a strided subset of A and skip zeros
/// only when they are frequent enough to pay for the per-element branch.
bool should_skip_zeros(const float* a, std::size_t count) {
  if (count == 0) return false;
  const std::size_t samples = std::min<std::size_t>(count, 257);
  const std::size_t stride = count / samples;
  std::size_t zeros = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    if (a[s * stride] == 0.0F) ++zeros;
  }
  return zeros * 8 >= samples;  // >= 12.5% exact zeros
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate, GemmMode mode) {
  if (m == 0 || n == 0) return;
  const bool skip_zeros =
      mode == GemmMode::Sparse ||
      (mode == GemmMode::Auto && should_skip_zeros(a, m * k));
  global_pool().parallel_for(
      0, m, /*grain=*/kMb,
      [&](std::size_t i0, std::size_t i1, unsigned /*lane*/) {
        if (!accumulate) {
          std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
        }
        if (skip_zeros) {
          gemm_rows<true>(a, b, c, i0, i1, k, n);
        } else {
          gemm_rows<false>(a, b, c, i0, i1, k, n);
        }
      });
}

void gemv(const float* a, const float* x, float* y, std::size_t m,
          std::size_t k, bool accumulate) {
  global_pool().parallel_for(
      0, m, /*grain=*/128,
      [&](std::size_t i0, std::size_t i1, unsigned /*lane*/) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float acc = accumulate ? y[i] : 0.0F;
          for (std::size_t p = 0; p < k; ++p) acc += arow[p] * x[p];
          y[i] = acc;
        }
      });
}

}  // namespace nocw::nn
