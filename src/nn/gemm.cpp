#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace nocw::nn {

namespace {
// Block sizes chosen so an A-panel (kMb x kKb) and C-panel rows stay in L1/L2.
constexpr std::size_t kMb = 64;
constexpr std::size_t kKb = 256;
}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i0 = 0; i0 < m; i0 += kMb) {
    const std::size_t i1 = std::min(i0 + kMb, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kKb) {
      const std::size_t p1 = std::min(p0 + kKb, k);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0F) continue;  // im2col zero padding is common
          const float* brow = b + p * n;
          // Inner loop over n: contiguous FMA chain, auto-vectorized.
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemv(const float* a, const float* x, float* y, std::size_t m,
          std::size_t k, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float acc = accumulate ? y[i] : 0.0F;
    for (std::size_t p = 0; p < k; ++p) acc += arow[p] * x[p];
    y[i] = acc;
  }
}

}  // namespace nocw::nn
