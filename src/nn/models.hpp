// The six-CNN zoo the paper evaluates (Sec. IV, Table I).
//
// Each builder returns a full-resolution architecture faithful to the Keras
// reference the paper used, with deterministically initialized weights (see
// nn/init.hpp for why synthetic weights preserve the paper's metrics). The
// `selected_layer` field is the compression target the paper's Layer
// Selection policy picks (deepest layer with the most parameters); the
// eval module re-derives it with that policy and the two must agree.
//
// Architecture notes vs. the paper:
//  * LeNet-5 uses the classic 32x32 input so every conv/pool is Valid-padded
//    and the network is trainable by the in-repo SGD path. Total 61,706
//    params, dense_1 = 48,120 (78%) — the paper's "62k / 80%" row.
//  * AlexNet is the compact single-column variant with a global-average-pool
//    before the classifier so dense_2 (4096x4096) dominates at ~65% of
//    ~25.7M params — the paper's "24M / 70%" row (see DESIGN.md).
//  * VGG-16 / MobileNet(v1) / Inception-v3 / ResNet50 follow the standard
//    Keras definitions (BatchNorm counted with its moving statistics, as
//    Keras does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace nocw::nn {

struct Model {
  std::string name;
  Graph graph;
  int input_size = 0;      ///< spatial extent (square inputs)
  int input_channels = 0;
  int num_classes = 0;
  std::string selected_layer;  ///< Table I compression target
  bool top5 = true;            ///< LeNet-5 reports top-1 (10 classes)
};

Model make_lenet5(std::uint64_t seed = 1);
Model make_alexnet(std::uint64_t seed = 2);
Model make_vgg16(std::uint64_t seed = 3);
Model make_mobilenet(std::uint64_t seed = 4);
Model make_inception_v3(std::uint64_t seed = 5);
Model make_resnet50(std::uint64_t seed = 6);

/// Builder lookup by canonical name ("LeNet-5", "AlexNet", "VGG-16",
/// "MobileNet", "Inception-v3", "ResNet50"). Throws on unknown names.
Model make_model(const std::string& name, std::uint64_t seed);

/// Canonical zoo order used by every table/figure bench.
const std::vector<std::string>& model_names();

}  // namespace nocw::nn
