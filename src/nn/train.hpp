// Minimal SGD trainer for sequential classifiers (used to train LeNet-5).
//
// The trainer requires a linear chain graph ending in Softmax whose layers
// all implement backward() (Conv2D/Dense/MaxPool/ReLU/Flatten — the LeNet-5
// configuration). Loss is softmax cross-entropy; the softmax node itself is
// folded into the loss gradient (probs - onehot), the numerically standard
// formulation.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/digits.hpp"
#include "nn/graph.hpp"

namespace nocw::nn {

struct TrainConfig {
  int epochs = 4;
  int batch_size = 32;
  float learning_rate = 0.05F;
  std::uint64_t shuffle_seed = 17;
};

struct TrainStats {
  std::vector<double> epoch_loss;      ///< mean CE loss per epoch
  std::vector<double> epoch_accuracy;  ///< training top-1 per epoch
};

/// Train `graph` in place. Throws std::logic_error if the graph is not a
/// backward-capable chain.
TrainStats train_classifier(Graph& graph, const Dataset& data,
                            const TrainConfig& config);

/// Top-1 accuracy of `graph` on `data` (forward in batches of 64).
double evaluate_top1(const Graph& graph, const Dataset& data);

/// Class-probability outputs for the whole dataset (N x classes).
Tensor predict(const Graph& graph, const Dataset& data);

}  // namespace nocw::nn
