// Deterministic weight initialization for the model zoo.
//
// The paper compresses *trained* Keras models; we have no network access, so
// (per DESIGN.md §4) the ImageNet-scale zoo is instantiated with fan-in
// scaled Gaussian weights (He/Glorot). This preserves the two properties the
// paper's metrics depend on: the weight stream is high-entropy (Fig. 3) and
// the per-layer value range shrinks with fan-in, which yields the paper's
// MSE ordering across models in Table II. LeNet-5 is trained for real by
// nn/train.hpp on top of this initialization.
#pragma once

#include <cstdint>

#include "nn/graph.hpp"
#include "util/rng.hpp"

namespace nocw::nn {

enum class InitScheme {
  HeNormal,      ///< std = sqrt(2 / fan_in) — conv/dense with ReLU
  GlorotNormal,  ///< std = sqrt(2 / (fan_in + fan_out))
};

enum class InitDistribution {
  /// Gaussian — matches the statistics of small trained networks; used for
  /// LeNet-5, whose Table II rows the paper derives from a net this repo
  /// actually trains.
  Gaussian,
  /// Laplacian (peaked, heavy-tailed) — matches the documented statistics of
  /// large trained CNNs; the tail-driven max-min range is what makes the
  /// paper's δ-as-percent-of-range compression effective on the ImageNet
  /// zoo (DESIGN.md §5).
  Laplacian,
};

/// Initialize one layer's kernel/bias in place. fan_in/fan_out are derived
/// from the layer geometry. BatchNorm gets gamma=1, beta=0, and slightly
/// dispersed moving statistics so folded scales are not all identical.
void init_layer(Layer& layer, Xoshiro256pp& rng,
                InitScheme scheme = InitScheme::GlorotNormal,
                InitDistribution dist = InitDistribution::Laplacian);

/// Initialize every parameterized layer of the graph deterministically from
/// `seed`. Layer order (graph order) fixes the stream, so a given
/// (model, seed) pair always produces identical weights.
void init_graph(Graph& graph, std::uint64_t seed,
                InitScheme scheme = InitScheme::GlorotNormal,
                InitDistribution dist = InitDistribution::Laplacian);

}  // namespace nocw::nn
