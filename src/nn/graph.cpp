#include "nn/graph.hpp"

#include <cstring>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace nocw::nn {

int Graph::add(LayerPtr layer, std::vector<int> input_nodes) {
  const int idx = static_cast<int>(nodes_.size());
  for (int in : input_nodes) {
    if (in < 0 || in >= idx) {
      throw std::invalid_argument("graph edges must be topological");
    }
  }
  if (!nodes_.empty() && input_nodes.empty() &&
      layer->type() != LayerType::Input) {
    throw std::invalid_argument("non-input node needs producers");
  }
  nodes_.push_back(Node{std::move(layer), std::move(input_nodes)});
  return idx;
}

int Graph::add_sequential(LayerPtr layer) {
  if (nodes_.empty()) return add(std::move(layer));
  return add(std::move(layer), {static_cast<int>(nodes_.size()) - 1});
}

int Graph::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].layer->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Graph Graph::clone() const {
  Graph g;
  g.nodes_.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    g.nodes_.push_back(Node{n.layer->clone(), n.inputs});
  }
  return g;
}

namespace {

/// Index of the last node consuming each node's output (-1 = never used).
std::vector<int> last_use(const std::vector<Graph::Node>& nodes) {
  std::vector<int> last(nodes.size(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int in : nodes[i].inputs) last[in] = static_cast<int>(i);
  }
  return last;
}

}  // namespace

Tensor Graph::forward(const Tensor& input) const {
  const int batch = input.rank() > 0 ? input.dim(0) : 0;
  if (batch >= 2 && global_pool().size() > 1 &&
      !ThreadPool::in_parallel_region()) {
    return forward_batched(input);
  }
  return forward_serial(input);
}

Tensor Graph::forward_batched(const Tensor& input) const {
  ThreadPool& pool = global_pool();
  const std::size_t batch = static_cast<std::size_t>(input.dim(0));
  const std::size_t in_stride = input.size() / batch;
  // One contiguous sub-batch per chunk; chunk index = b0 / grain. Sample
  // independence makes the stitched output bit-identical to the serial pass.
  const std::size_t grain = (batch + pool.size() - 1) / pool.size();
  std::vector<Tensor> parts((batch + grain - 1) / grain);
  pool.parallel_for(
      0, batch, grain, [&](std::size_t b0, std::size_t b1, unsigned /*lane*/) {
        std::vector<int> sub_shape = input.shape();
        sub_shape[0] = static_cast<int>(b1 - b0);
        Tensor sub(std::move(sub_shape));
        std::memcpy(sub.raw(), input.raw() + b0 * in_stride,
                    (b1 - b0) * in_stride * sizeof(float));
        parts[b0 / grain] = forward_serial(sub);
      });
  std::vector<int> out_shape = parts.front().shape();
  const std::size_t out_stride =
      parts.front().size() /
      static_cast<std::size_t>(parts.front().dim(0));
  out_shape[0] = static_cast<int>(batch);
  Tensor out(std::move(out_shape));
  std::size_t row = 0;
  for (const Tensor& p : parts) {
    std::memcpy(out.raw() + row * out_stride, p.raw(),
                p.size() * sizeof(float));
    row += static_cast<std::size_t>(p.dim(0));
  }
  return out;
}

Tensor Graph::forward_serial(const Tensor& input) const {
  if (nodes_.empty()) throw std::logic_error("empty graph");
  const std::vector<int> last = last_use(nodes_);
  std::vector<Tensor> outputs(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    std::vector<const Tensor*> ins;
    if (n.inputs.empty()) {
      ins.push_back(&input);
    } else {
      for (int in : n.inputs) ins.push_back(&outputs[in]);
    }
    outputs[i] = n.layer->forward(ins);
    // Release producers that no later node consumes (activation footprint of
    // a full VGG pass drops from ~100 MB to the live window).
    for (int in : n.inputs) {
      if (last[in] == static_cast<int>(i)) outputs[in] = Tensor{};
    }
  }
  return std::move(outputs.back());
}

std::pair<Tensor, Tensor> Graph::forward_capturing(const Tensor& input,
                                                   int capture) const {
  if (capture < 0 || capture >= static_cast<int>(nodes_.size())) {
    throw std::out_of_range("capture node out of range");
  }
  if (nodes_[capture].inputs.size() != 1) {
    throw std::invalid_argument("capture node must have a single producer");
  }
  const int producer = nodes_[capture].inputs[0];
  const std::vector<int> last = last_use(nodes_);
  std::vector<Tensor> outputs(nodes_.size());
  Tensor captured;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    std::vector<const Tensor*> ins;
    if (n.inputs.empty()) {
      ins.push_back(&input);
    } else {
      for (int in : n.inputs) ins.push_back(&outputs[in]);
    }
    outputs[i] = n.layer->forward(ins);
    if (static_cast<int>(i) == producer) captured = outputs[i];
    for (int in : n.inputs) {
      if (last[in] == static_cast<int>(i)) outputs[in] = Tensor{};
    }
  }
  return {std::move(outputs.back()), std::move(captured)};
}

Tensor Graph::forward_tail(const Tensor& captured_input, int from) const {
  if (from <= 0 || from >= static_cast<int>(nodes_.size())) {
    throw std::out_of_range("tail start out of range");
  }
  if (nodes_[from].inputs.size() != 1) {
    throw std::invalid_argument("tail start must have a single producer");
  }
  const int producer = nodes_[from].inputs[0];
  std::vector<Tensor> outputs(nodes_.size());
  for (std::size_t i = static_cast<std::size_t>(from); i < nodes_.size();
       ++i) {
    const Node& n = nodes_[i];
    std::vector<const Tensor*> ins;
    for (int in : n.inputs) {
      if (in == producer) {
        ins.push_back(&captured_input);
      } else if (in >= from) {
        ins.push_back(&outputs[in]);
      } else {
        throw std::logic_error(
            "forward_tail: node depends on an uncaptured prefix output");
      }
    }
    outputs[i] = n.layer->forward(ins);
  }
  return std::move(outputs.back());
}

std::size_t Graph::total_params() const noexcept {
  std::size_t total = 0;
  for (const auto& n : nodes_) total += n.layer->param_count();
  return total;
}

std::vector<int> Graph::parameterized_nodes() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].layer->kernel().empty()) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace nocw::nn
