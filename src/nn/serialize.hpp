// Weight checkpointing: save/load all learnable state of a graph.
//
// Binary format: magic + format version, then node records keyed by layer
// name with kernel, bias and (for BatchNorm) moving statistics. Loading
// validates names and sizes against the target graph, so a checkpoint only
// loads into the same architecture. Used by the benches to train LeNet-5
// once and share it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "nn/graph.hpp"

namespace nocw::nn {

/// Raised by load_weights when the file exists but cannot be loaded: bad
/// magic, unsupported version, truncation, or a record that does not match
/// the target graph's architecture. The message names the failing record and
/// `byte_offset()` locates where in the file the parse stopped — enough to
/// tell a corrupted checkpoint from a checkpoint of a different model.
class SerializeError : public std::runtime_error {
 public:
  SerializeError(const std::string& what, std::size_t byte_offset)
      : std::runtime_error(what + " (at byte offset " +
                           std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  [[nodiscard]] std::size_t byte_offset() const noexcept {
    return byte_offset_;
  }

 private:
  std::size_t byte_offset_;
};

/// Write all parameters to `path`. Returns false on I/O failure.
bool save_weights(const Graph& graph, const std::string& path);

/// Load parameters from `path` into `graph`. Returns false when the file is
/// missing (the one expected, recoverable case — callers retrain); throws
/// SerializeError when the file exists but is truncated, corrupt, from an
/// unsupported format version, or does not match the graph's architecture.
bool load_weights(Graph& graph, const std::string& path);

}  // namespace nocw::nn
