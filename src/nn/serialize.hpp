// Weight checkpointing: save/load all learnable state of a graph.
//
// Binary format: magic, node records keyed by layer name with kernel, bias
// and (for BatchNorm) moving statistics. Loading validates names and sizes
// against the target graph, so a checkpoint only loads into the same
// architecture. Used by the benches to train LeNet-5 once and share it.
#pragma once

#include <string>

#include "nn/graph.hpp"

namespace nocw::nn {

/// Write all parameters to `path`. Returns false on I/O failure.
bool save_weights(const Graph& graph, const std::string& path);

/// Load parameters from `path` into `graph`. Returns false when the file is
/// missing, corrupt, or does not match the graph's architecture.
bool load_weights(Graph& graph, const std::string& path);

}  // namespace nocw::nn
