// LeNet-5, AlexNet (compact), VGG-16 and MobileNet v1 builders.
#include <memory>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/models_util.hpp"

namespace nocw::nn {

using detail::conv_bn_relu;
using detail::conv_relu;
using detail::dense_relu;

Model make_lenet5(std::uint64_t seed) {
  Model m;
  m.name = "LeNet-5";
  m.input_size = 32;
  m.input_channels = 1;
  m.num_classes = 10;
  m.selected_layer = "dense_1";
  m.top5 = false;  // 10 classes: the paper reports top-1 for LeNet-5

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>("input", std::vector<int>{0, 32, 32, 1}));
  n = g.add(std::make_unique<Conv2D>("conv_1", 1, 6, 5, 5, 1, Padding::Valid), {n});
  n = g.add(std::make_unique<ReLU>("conv_1_relu"), {n});
  n = g.add(std::make_unique<MaxPool>("pool_1", 2, 2), {n});
  n = g.add(std::make_unique<Conv2D>("conv_2", 6, 16, 5, 5, 1, Padding::Valid), {n});
  n = g.add(std::make_unique<ReLU>("conv_2_relu"), {n});
  n = g.add(std::make_unique<MaxPool>("pool_2", 2, 2), {n});
  n = g.add(std::make_unique<Flatten>("flatten"), {n});
  n = g.add(std::make_unique<Dense>("dense_1", 400, 120), {n});
  n = g.add(std::make_unique<ReLU>("dense_1_relu"), {n});
  n = g.add(std::make_unique<Dense>("dense_2", 120, 84), {n});
  n = g.add(std::make_unique<ReLU>("dense_2_relu"), {n});
  n = g.add(std::make_unique<Dense>("dense_3", 84, 10), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  // Gaussian: LeNet-5 is trained in-repo and its Table II rows track the
  // paper under Gaussian statistics (see InitDistribution docs).
  init_graph(g, seed, InitScheme::GlorotNormal, InitDistribution::Gaussian);
  return m;
}

Model make_alexnet(std::uint64_t seed) {
  Model m;
  m.name = "AlexNet";
  m.input_size = 227;
  m.input_channels = 3;
  m.num_classes = 1000;
  m.selected_layer = "dense_2";

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 227, 227, 3}));
  n = conv_relu(g, "conv_1", n, 3, 96, 11, 4, Padding::Valid);    // 55x55x96
  n = g.add(std::make_unique<MaxPool>("pool_1", 3, 2), {n});      // 27x27
  n = conv_relu(g, "conv_2", n, 96, 256, 5, 1, Padding::Same);
  n = g.add(std::make_unique<MaxPool>("pool_2", 3, 2), {n});      // 13x13
  n = conv_relu(g, "conv_3", n, 256, 384, 3, 1, Padding::Same);
  n = conv_relu(g, "conv_4", n, 384, 384, 3, 1, Padding::Same);
  n = conv_relu(g, "conv_5", n, 384, 256, 3, 1, Padding::Same);
  n = g.add(std::make_unique<MaxPool>("pool_3", 3, 2), {n});      // 6x6x256
  n = g.add(std::make_unique<GlobalAvgPool>("gap"), {n});         // 256
  n = dense_relu(g, "dense_1", n, 256, 4096);
  n = dense_relu(g, "dense_2", n, 4096, 4096);
  n = g.add(std::make_unique<Dense>("dense_3", 4096, 1000), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  init_graph(g, seed);
  return m;
}

Model make_vgg16(std::uint64_t seed) {
  Model m;
  m.name = "VGG-16";
  m.input_size = 224;
  m.input_channels = 3;
  m.num_classes = 1000;
  m.selected_layer = "dense_1";

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 224, 224, 3}));
  struct Block {
    int convs;
    int channels;
  };
  const Block blocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
  int cin = 3;
  int bi = 1;
  for (const Block& b : blocks) {
    for (int c = 1; c <= b.convs; ++c) {
      const std::string name =
          "block" + std::to_string(bi) + "_conv" + std::to_string(c);
      n = conv_relu(g, name, n, cin, b.channels, 3, 1, Padding::Same);
      cin = b.channels;
    }
    n = g.add(std::make_unique<MaxPool>("block" + std::to_string(bi) + "_pool",
                                        2, 2),
              {n});
    ++bi;
  }
  n = g.add(std::make_unique<Flatten>("flatten"), {n});  // 7*7*512 = 25088
  n = dense_relu(g, "dense_1", n, 25088, 4096);          // fc1: 102.8M params
  n = dense_relu(g, "dense_2", n, 4096, 4096);
  n = g.add(std::make_unique<Dense>("dense_3", 4096, 1000), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  init_graph(g, seed);
  return m;
}

Model make_mobilenet(std::uint64_t seed) {
  Model m;
  m.name = "MobileNet";
  m.input_size = 224;
  m.input_channels = 3;
  m.num_classes = 1000;
  m.selected_layer = "conv_preds";

  Graph& g = m.graph;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 224, 224, 3}));
  n = conv_bn_relu(g, "conv1", n, 3, 32, 3, 3, 2, Padding::Same, true, false);

  struct Block {
    int out_channels;
    int stride;
  };
  // MobileNet v1 (alpha = 1) depthwise-separable schedule.
  const Block blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                          {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                          {512, 1}, {1024, 2}, {1024, 1}};
  int cin = 32;
  int idx = 1;
  for (const Block& b : blocks) {
    const std::string dw = "conv_dw_" + std::to_string(idx);
    const int d = g.add(
        std::make_unique<DepthwiseConv2D>(dw, cin, 3, 3, b.stride,
                                          Padding::Same, false),
        {n});
    const int dbn = g.add(std::make_unique<BatchNorm>(dw + "_bn", cin), {d});
    n = g.add(std::make_unique<ReLU6>(dw + "_relu"), {dbn});
    const std::string pw = "conv_pw_" + std::to_string(idx);
    n = conv_bn_relu(g, pw, n, cin, b.out_channels, 1, 1, 1, Padding::Same,
                     true, false);
    cin = b.out_channels;
    ++idx;
  }
  n = g.add(std::make_unique<GlobalAvgPool>("gap"), {n});  // (N, 1024)
  n = g.add(std::make_unique<Reshape>("reshape", std::vector<int>{1, 1, 1024}),
            {n});
  n = g.add(std::make_unique<Conv2D>("conv_preds", 1024, 1000, 1, 1, 1,
                                     Padding::Valid),
            {n});
  n = g.add(std::make_unique<Flatten>("flatten_preds"), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});

  init_graph(g, seed);
  return m;
}

}  // namespace nocw::nn
