// Classification metrics: top-1 / top-k accuracy and top-k agreement.
//
// The paper reports top-5 accuracy (top-1 for LeNet-5). For the untrained
// ImageNet-scale zoo we report *top-5 agreement with the uncompressed
// model*: the original model's prediction set is the ground truth and the
// metric measures how much of it the compressed model preserves — exactly
// the prediction churn the paper's accuracy columns capture (DESIGN.md §4).
#pragma once

#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace nocw::nn {

/// Index of the maximum of a score row.
int argmax(std::span<const float> scores);

/// Indices of the k largest scores, descending (deterministic tie-break by
/// lower index first).
std::vector<int> topk(std::span<const float> scores, int k);

/// True when `label` appears among the k best scores.
bool in_topk(std::span<const float> scores, int label, int k);

/// |topk(a) ∩ topk(b)| / k — smooth agreement between two score rows.
double topk_overlap(std::span<const float> a, std::span<const float> b, int k);

/// Fraction of rows of `scores` (N x C tensor) whose argmax equals labels[i].
double top1_accuracy(const Tensor& scores, std::span<const int> labels);

/// Fraction of rows whose label is within the top k.
double topk_accuracy(const Tensor& scores, std::span<const int> labels, int k);

/// Mean top-k overlap across paired rows of two (N x C) score tensors.
double mean_topk_agreement(const Tensor& a, const Tensor& b, int k);

/// Top-k retention: fraction of rows where the *top-1* prediction of
/// `baseline` appears in the top k of `outputs`. This is the exact analog of
/// top-k accuracy with the baseline model's prediction standing in for the
/// ground-truth label (DESIGN.md §4) — the metric the δ sweeps report for
/// the untrained ImageNet-scale zoo.
double topk_retention(const Tensor& baseline, const Tensor& outputs, int k);

}  // namespace nocw::nn
