// Dense float tensor in NHWC layout (the layout the accelerator streams).
//
// Shapes are runtime vectors of extents; rank 1 (flat), 2 (N,C) and 4
// (N,H,W,C) cover every layer in the zoo. Data is value-semantic and
// contiguous, so layers can expose their kernels to the compression codec as
// a single std::span<float> — exactly the "succession of model parameters"
// the paper compresses.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace nocw::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  [[nodiscard]] const std::vector<int>& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(shape_.size());
  }
  [[nodiscard]] int dim(int i) const {
    NOCW_CHECK(i >= 0 && i < rank());
    return shape_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) {
    NOCW_DCHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    NOCW_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  /// NHWC element access for rank-4 tensors.
  float& at(int n, int h, int w, int c) {
    return data_[flat_index(n, h, w, c)];
  }
  const float& at(int n, int h, int w, int c) const {
    return data_[flat_index(n, h, w, c)];
  }

  /// (N, C) element access for rank-2 tensors.
  float& at(int n, int c) {
    NOCW_DCHECK_EQ(rank(), 2);
    return data_[static_cast<std::size_t>(n) * shape_[1] + c];
  }
  const float& at(int n, int c) const {
    NOCW_DCHECK_EQ(rank(), 2);
    return data_[static_cast<std::size_t>(n) * shape_[1] + c];
  }

  void fill(float value);

  /// Reshape in place; the element count must match.
  void reshape(std::vector<int> new_shape);

  [[nodiscard]] std::string shape_string() const;

  static std::size_t shape_size(const std::vector<int>& shape);

 private:
  [[nodiscard]] std::size_t flat_index(int n, int h, int w, int c) const {
    NOCW_DCHECK_EQ(rank(), 4);
    NOCW_DCHECK(n >= 0 && n < shape_[0] && h >= 0 && h < shape_[1]);
    NOCW_DCHECK(w >= 0 && w < shape_[2] && c >= 0 && c < shape_[3]);
    return ((static_cast<std::size_t>(n) * shape_[1] + h) * shape_[2] + w) *
               shape_[3] +
           c;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace nocw::nn
