// Multi-threaded GEMM tuned for the conv/dense layers in the zoo.
//
// C[M x N] (+)= A[M x K] * B[K x N], all row-major. The kernel blocks over K
// and N so the B-panel and the C rows being updated stay cache-resident, and
// the inner loop is a contiguous FMA chain GCC auto-vectorizes. M-row blocks
// are distributed over the global thread pool: each lane owns a disjoint set
// of C rows and the per-element accumulation order (ascending k) is
// identical to the serial kernel, so results are bit-exact for any
// NOCW_THREADS. No transposed variants are needed: im2col lays patches out
// so conv is exactly this product.
#pragma once

#include <cstddef>

namespace nocw::nn {

/// How the kernel treats zero entries of A.
///
/// im2col matrices of Same-padded convs and post-ReLU activations are full
/// of exact zeros, and skipping them (`Sparse`) beats multiplying by them.
/// For dense operands the per-element branch costs ~15% — `Dense` hoists it
/// out of the hot path. `Auto` (the default) samples A once and picks.
/// The two paths differ at most in the sign of a floating-point zero; mode
/// choice never depends on thread count, so determinism is preserved.
enum class GemmMode { Auto, Dense, Sparse };

/// C = A*B (beta = 0) or C += A*B (accumulate = true).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate = false,
          GemmMode mode = GemmMode::Auto);

/// y = A*x (+ y), the M x K by K matrix-vector special case. Parallel over
/// output rows; each row is an independent dot product (bit-exact).
void gemv(const float* a, const float* x, float* y, std::size_t m,
          std::size_t k, bool accumulate = false);

}  // namespace nocw::nn
