// Minimal single-threaded GEMM tuned for the conv/dense layers in the zoo.
//
// C[M x N] (+)= A[M x K] * B[K x N], all row-major. The kernel blocks over K
// and unrolls over N so GCC auto-vectorizes the inner loop; on one laptop
// core this reaches a few GFLOP/s, enough to run full-resolution VGG-16
// probe passes in seconds. No transposed variants are needed: im2col lays
// patches out so conv is exactly this product.
#pragma once

#include <cstddef>

namespace nocw::nn {

/// C = A*B (beta = 0) or C += A*B (accumulate = true).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate = false);

/// y = A*x (+ y), the M x K by K matrix-vector special case.
void gemv(const float* a, const float* x, float* y, std::size_t m,
          std::size_t k, bool accumulate = false);

}  // namespace nocw::nn
