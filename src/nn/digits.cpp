#include "nn/digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace nocw::nn {

namespace {

struct Pt {
  float x, y;
};
struct Seg {
  Pt a, b;
};

/// Digit skeletons on a unit box (x in [0,1], y in [0,1], y grows downward).
/// Roughly seven-segment shapes with a few diagonals for 2/4/7.
const std::vector<Seg>& glyph(int digit) {
  static const std::array<std::vector<Seg>, 10> kGlyphs = {{
      // 0: rounded rectangle outline
      {{{{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.85F, 0.95F}},
        {{0.85F, 0.95F}, {0.15F, 0.95F}}, {{0.15F, 0.95F}, {0.15F, 0.05F}}}},
      // 1: vertical stroke with a small flag
      {{{{0.5F, 0.05F}, {0.5F, 0.95F}}, {{0.3F, 0.25F}, {0.5F, 0.05F}}}},
      // 2
      {{{{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.85F, 0.5F}},
        {{0.85F, 0.5F}, {0.15F, 0.95F}}, {{0.15F, 0.95F}, {0.85F, 0.95F}}}},
      // 3
      {{{{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.85F, 0.95F}},
        {{0.85F, 0.95F}, {0.15F, 0.95F}}, {{0.35F, 0.5F}, {0.85F, 0.5F}}}},
      // 4
      {{{{0.75F, 0.05F}, {0.15F, 0.6F}}, {{0.15F, 0.6F}, {0.85F, 0.6F}},
        {{0.75F, 0.05F}, {0.75F, 0.95F}}}},
      // 5
      {{{{0.85F, 0.05F}, {0.15F, 0.05F}}, {{0.15F, 0.05F}, {0.15F, 0.5F}},
        {{0.15F, 0.5F}, {0.85F, 0.5F}}, {{0.85F, 0.5F}, {0.85F, 0.95F}},
        {{0.85F, 0.95F}, {0.15F, 0.95F}}}},
      // 6
      {{{{0.85F, 0.05F}, {0.15F, 0.05F}}, {{0.15F, 0.05F}, {0.15F, 0.95F}},
        {{0.15F, 0.95F}, {0.85F, 0.95F}}, {{0.85F, 0.95F}, {0.85F, 0.5F}},
        {{0.85F, 0.5F}, {0.15F, 0.5F}}}},
      // 7
      {{{{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.35F, 0.95F}}}},
      // 8
      {{{{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.85F, 0.95F}},
        {{0.85F, 0.95F}, {0.15F, 0.95F}}, {{0.15F, 0.95F}, {0.15F, 0.05F}},
        {{0.15F, 0.5F}, {0.85F, 0.5F}}}},
      // 9
      {{{{0.85F, 0.5F}, {0.15F, 0.5F}}, {{0.15F, 0.5F}, {0.15F, 0.05F}},
        {{0.15F, 0.05F}, {0.85F, 0.05F}}, {{0.85F, 0.05F}, {0.85F, 0.95F}},
        {{0.85F, 0.95F}, {0.15F, 0.95F}}}},
  }};
  return kGlyphs[static_cast<std::size_t>(digit)];
}

float dist_to_segment(Pt p, Seg s) {
  const float dx = s.b.x - s.a.x;
  const float dy = s.b.y - s.a.y;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0F
                ? ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len2
                : 0.0F;
  t = std::clamp(t, 0.0F, 1.0F);
  const float px = s.a.x + t * dx - p.x;
  const float py = s.a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

}  // namespace

Tensor render_digit(int digit, Xoshiro256pp& rng) {
  constexpr int kSize = 32;
  Tensor img({1, kSize, kSize, 1});
  const auto& segs = glyph(digit);

  // Random affine jitter: the glyph box (20x24 px nominal) moves, scales and
  // rotates slightly, as handwriting would.
  const float scale = static_cast<float>(rng.uniform(0.85, 1.15));
  const float angle = static_cast<float>(rng.uniform(-0.18, 0.18));
  const float cx = 16.0F + static_cast<float>(rng.uniform(-2.5, 2.5));
  const float cy = 16.0F + static_cast<float>(rng.uniform(-2.5, 2.5));
  const float half_w = 9.0F * scale;
  const float half_h = 11.0F * scale;
  const float cos_a = std::cos(angle);
  const float sin_a = std::sin(angle);
  const float thickness =
      static_cast<float>(rng.uniform(1.2, 2.2));
  const float ink = static_cast<float>(rng.uniform(0.75, 1.0));

  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      // Map the pixel back into glyph space (inverse affine).
      const float rx = static_cast<float>(x) - cx;
      const float ry = static_cast<float>(y) - cy;
      const float gx = (cos_a * rx + sin_a * ry) / (2.0F * half_w) + 0.5F;
      const float gy = (-sin_a * rx + cos_a * ry) / (2.0F * half_h) + 0.5F;
      float dmin = 1e9F;
      for (const Seg& s : segs) {
        dmin = std::min(dmin, dist_to_segment({gx, gy}, s));
      }
      // Distance in glyph units -> pixels (approx via width scale).
      const float dpx = dmin * 2.0F * half_w;
      // Soft-edged stroke.
      const float v = ink / (1.0F + std::exp(2.5F * (dpx - thickness)));
      float noisy = v + static_cast<float>(rng.normal(0.0, 0.03));
      img.at(0, y, x, 0) = std::clamp(noisy, 0.0F, 1.0F);
    }
  }
  return img;
}

Dataset make_digits(int n, std::uint64_t seed) {
  Dataset ds;
  ds.images = Tensor({n, 32, 32, 1});
  ds.labels.resize(static_cast<std::size_t>(n));
  Xoshiro256pp rng(seed);
  for (int i = 0; i < n; ++i) {
    const int digit = i % 10;
    ds.labels[static_cast<std::size_t>(i)] = digit;
    const Tensor img = render_digit(digit, rng);
    std::copy(img.data().begin(), img.data().end(),
              ds.images.data().begin() +
                  static_cast<std::ptrdiff_t>(i) * 32 * 32);
  }
  return ds;
}

}  // namespace nocw::nn
