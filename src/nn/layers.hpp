// Layer library for the CNN zoo (paper Sec. IV-A models).
//
// Layers are polymorphic nodes with value-semantic tensors flowing between
// them. Every parameterized layer exposes its kernel as one contiguous
// std::span<float> — the "succession of model parameters" W that the
// compression codec consumes — plus bias and (for BatchNorm) the per-channel
// statistics, so param_count() matches what Keras reports for the same
// architecture and the paper's Table I fractions can be reproduced.
//
// forward() is inference-grade (im2col + GEMM for conv, GEMM for dense).
// backward() is implemented for the subset of layers LeNet-5 needs so the
// in-repo SGD trainer can produce genuinely trained weights; the other
// layers throw if asked to train.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nocw::nn {

enum class LayerType {
  Input,
  Conv2D,
  DepthwiseConv2D,
  Dense,
  MaxPool,
  AvgPool,
  GlobalAvgPool,
  ReLU,
  ReLU6,
  Softmax,
  Flatten,
  BatchNorm,
  Add,
  Concat,
};

const char* layer_type_name(LayerType t) noexcept;

enum class Padding { Valid, Same };

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] virtual LayerType type() const noexcept = 0;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Run the layer. `inputs` holds one tensor per graph edge into this node.
  [[nodiscard]] virtual Tensor forward(
      std::span<const Tensor* const> inputs) const = 0;

  /// Deep copy of the layer's inference state (weights, bias, statistics;
  /// training gradients are not carried over). Parallel evaluation sweeps
  /// clone whole graphs to give every thread an independently mutable
  /// weight set — see Graph::clone().
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// The compressible weight succession (empty for parameterless layers).
  [[nodiscard]] virtual std::span<float> kernel() { return {}; }
  [[nodiscard]] virtual std::span<const float> kernel() const { return {}; }
  [[nodiscard]] virtual std::span<float> bias() { return {}; }

  /// Total trainable (Keras-style) parameter count including bias and, for
  /// BatchNorm, the moving statistics.
  [[nodiscard]] virtual std::size_t param_count() const noexcept { return 0; }

  // --- training interface (LeNet-5 subset) -------------------------------
  /// Propagate `grad_out` to input gradients, accumulating parameter
  /// gradients internally. Layers outside the trainable subset throw.
  [[nodiscard]] virtual std::vector<Tensor> backward(
      std::span<const Tensor* const> /*inputs*/, const Tensor& /*grad_out*/) {
    throw std::logic_error("backward not implemented for layer " + name_);
  }
  virtual void zero_grads() {}
  virtual void sgd_step(float /*lr*/) {}

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

// ---------------------------------------------------------------------------

class InputLayer final : public Layer {
 public:
  InputLayer(std::string name, std::vector<int> shape)
      : Layer(std::move(name)), shape_(std::move(shape)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Input;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] const std::vector<int>& input_shape() const noexcept {
    return shape_;
  }

 private:
  std::vector<int> shape_;  ///< expected shape with batch dim 0 = wildcard
};

class Conv2D final : public Layer {
 public:
  /// Kernel layout: [kh][kw][cin][cout] (HWIO), contiguous. `use_bias`
  /// mirrors Keras: layers immediately followed by BatchNorm omit the bias.
  Conv2D(std::string name, int in_channels, int out_channels, int kernel_h,
         int kernel_w, int stride, Padding padding, bool use_bias = true);

  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Conv2D;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::span<float> kernel() override { return kernel_; }
  [[nodiscard]] std::span<const float> kernel() const override {
    return kernel_;
  }
  [[nodiscard]] std::span<float> bias() override { return bias_; }
  [[nodiscard]] std::size_t param_count() const noexcept override {
    return kernel_.size() + bias_.size();
  }

  [[nodiscard]] std::vector<Tensor> backward(
      std::span<const Tensor* const> inputs, const Tensor& grad_out) override;
  void zero_grads() override;
  void sgd_step(float lr) override;

  [[nodiscard]] int in_channels() const noexcept { return cin_; }
  [[nodiscard]] int out_channels() const noexcept { return cout_; }
  [[nodiscard]] int kernel_h() const noexcept { return kh_; }
  [[nodiscard]] int kernel_w() const noexcept { return kw_; }
  [[nodiscard]] int stride() const noexcept { return stride_; }
  [[nodiscard]] Padding padding() const noexcept { return padding_; }

 private:
  int cin_, cout_, kh_, kw_, stride_;
  Padding padding_;
  std::vector<float> kernel_;
  std::vector<float> bias_;
  std::vector<float> kernel_grad_;
  std::vector<float> bias_grad_;
};

class DepthwiseConv2D final : public Layer {
 public:
  /// Kernel layout: [kh][kw][c], depth multiplier 1 (MobileNet style).
  DepthwiseConv2D(std::string name, int channels, int kernel_h, int kernel_w,
                  int stride, Padding padding, bool use_bias = true);

  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::DepthwiseConv2D;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::span<float> kernel() override { return kernel_; }
  [[nodiscard]] std::span<const float> kernel() const override {
    return kernel_;
  }
  [[nodiscard]] std::span<float> bias() override { return bias_; }
  [[nodiscard]] std::size_t param_count() const noexcept override {
    return kernel_.size() + bias_.size();
  }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] int kernel_h() const noexcept { return kh_; }
  [[nodiscard]] int kernel_w() const noexcept { return kw_; }
  [[nodiscard]] int stride() const noexcept { return stride_; }
  [[nodiscard]] Padding padding() const noexcept { return padding_; }

 private:
  int channels_, kh_, kw_, stride_;
  Padding padding_;
  std::vector<float> kernel_;
  std::vector<float> bias_;
};

class Dense final : public Layer {
 public:
  /// Kernel layout: [in][out] row-major.
  Dense(std::string name, int in_features, int out_features);

  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Dense;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::span<float> kernel() override { return kernel_; }
  [[nodiscard]] std::span<const float> kernel() const override {
    return kernel_;
  }
  [[nodiscard]] std::span<float> bias() override { return bias_; }
  [[nodiscard]] std::size_t param_count() const noexcept override {
    return kernel_.size() + bias_.size();
  }

  [[nodiscard]] std::vector<Tensor> backward(
      std::span<const Tensor* const> inputs, const Tensor& grad_out) override;
  void zero_grads() override;
  void sgd_step(float lr) override;

  [[nodiscard]] int in_features() const noexcept { return in_; }
  [[nodiscard]] int out_features() const noexcept { return out_; }

 private:
  int in_, out_;
  std::vector<float> kernel_;
  std::vector<float> bias_;
  std::vector<float> kernel_grad_;
  std::vector<float> bias_grad_;
};

class MaxPool final : public Layer {
 public:
  MaxPool(std::string name, int pool, int stride,
          Padding padding = Padding::Valid)
      : Layer(std::move(name)), pool_(pool), stride_(stride),
        padding_(padding) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::MaxPool;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  /// Training path supports Valid padding (the LeNet-5 configuration).
  [[nodiscard]] std::vector<Tensor> backward(
      std::span<const Tensor* const> inputs, const Tensor& grad_out) override;
  [[nodiscard]] int pool() const noexcept { return pool_; }
  [[nodiscard]] int stride() const noexcept { return stride_; }
  [[nodiscard]] Padding padding() const noexcept { return padding_; }

 private:
  int pool_, stride_;
  Padding padding_;
};

class AvgPool final : public Layer {
 public:
  AvgPool(std::string name, int pool, int stride, Padding padding = Padding::Valid)
      : Layer(std::move(name)), pool_(pool), stride_(stride),
        padding_(padding) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::AvgPool;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] int pool() const noexcept { return pool_; }
  [[nodiscard]] int stride() const noexcept { return stride_; }
  [[nodiscard]] Padding padding() const noexcept { return padding_; }

 private:
  int pool_, stride_;
  Padding padding_;
};

class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::GlobalAvgPool;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::ReLU;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::vector<Tensor> backward(
      std::span<const Tensor* const> inputs, const Tensor& grad_out) override;
};

class ReLU6 final : public Layer {
 public:
  explicit ReLU6(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::ReLU6;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

class Softmax final : public Layer {
 public:
  explicit Softmax(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Softmax;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

/// Reshape to a fixed per-sample shape (batch dim preserved). Used e.g. by
/// MobileNet to view the pooled (N, C) vector as (N, 1, 1, C) so the
/// conv_preds 1x1 convolution can consume it, as in the Keras reference.
class Reshape final : public Layer {
 public:
  /// `per_sample_shape` excludes the batch dimension.
  Reshape(std::string name, std::vector<int> per_sample_shape)
      : Layer(std::move(name)), per_sample_(std::move(per_sample_shape)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Flatten;  // shape-only op, reported as Flatten-kind
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] const std::vector<int>& per_sample_shape() const noexcept {
    return per_sample_;
  }

 private:
  std::vector<int> per_sample_;
};

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Flatten;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::vector<Tensor> backward(
      std::span<const Tensor* const> inputs, const Tensor& grad_out) override;
};

/// Inference-mode batch normalization over the channel (last) axis.
/// Holds gamma, beta, moving mean and moving variance so param_count()
/// reports 4*C, matching Keras.
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, int channels, float epsilon = 1e-3F);

  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::BatchNorm;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  /// BatchNorm's "kernel" for compression purposes is gamma (rarely chosen
  /// by the layer-selection policy, but exposed for completeness).
  [[nodiscard]] std::span<float> kernel() override { return gamma_; }
  [[nodiscard]] std::span<const float> kernel() const override {
    return gamma_;
  }
  [[nodiscard]] std::span<float> bias() override { return beta_; }
  [[nodiscard]] std::size_t param_count() const noexcept override {
    return gamma_.size() + beta_.size() + mean_.size() + var_.size();
  }

  [[nodiscard]] std::span<float> moving_mean() { return mean_; }
  [[nodiscard]] std::span<float> moving_var() { return var_; }

 private:
  float eps_;
  std::vector<float> gamma_, beta_, mean_, var_;
};

class Add final : public Layer {
 public:
  explicit Add(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Add;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

/// Concatenation along the channel (last) axis.
class Concat final : public Layer {
 public:
  explicit Concat(std::string name) : Layer(std::move(name)) {}
  [[nodiscard]] LayerType type() const noexcept override {
    return LayerType::Concat;
  }
  [[nodiscard]] Tensor forward(
      std::span<const Tensor* const> inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

/// Output spatial extent for a conv/pool window.
int conv_out_extent(int in, int window, int stride, Padding padding) noexcept;
/// Total padding applied on one axis under SAME (split begin/end like TF).
int same_pad_total(int in, int window, int stride) noexcept;

}  // namespace nocw::nn
