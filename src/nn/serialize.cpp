#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

namespace nocw::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4E4F4357;  // "NOCW"

/// All mutable float state of one layer, in a fixed order.
std::vector<std::span<float>> layer_state(Layer& layer) {
  std::vector<std::span<float>> spans;
  if (!layer.kernel().empty()) spans.push_back(layer.kernel());
  if (!layer.bias().empty()) spans.push_back(layer.bias());
  if (layer.type() == LayerType::BatchNorm) {
    auto& bn = static_cast<BatchNorm&>(layer);
    spans.push_back(bn.moving_mean());
    spans.push_back(bn.moving_var());
  }
  return spans;
}

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u64(std::ifstream& f, std::uint64_t& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(f);
}

}  // namespace

bool save_weights(const Graph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::uint32_t magic = kMagic;
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  write_u64(f, graph.node_count());
  // const_cast: layer_state needs mutable spans; saving only reads them.
  auto& g = const_cast<Graph&>(graph);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    Layer& layer = g.layer(static_cast<int>(i));
    const std::string& name = layer.name();
    write_u64(f, name.size());
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto spans = layer_state(layer);
    write_u64(f, spans.size());
    for (const auto& s : spans) {
      write_u64(f, s.size());
      f.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(f);
}

bool load_weights(Graph& graph, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!f || magic != kMagic) return false;
  std::uint64_t nodes = 0;
  if (!read_u64(f, nodes) || nodes != graph.node_count()) return false;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    Layer& layer = graph.layer(static_cast<int>(i));
    std::uint64_t name_len = 0;
    if (!read_u64(f, name_len) || name_len > 4096) return false;
    std::string name(name_len, '\0');
    f.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!f || name != layer.name()) return false;
    std::uint64_t span_count = 0;
    if (!read_u64(f, span_count)) return false;
    const auto spans = layer_state(layer);
    if (span_count != spans.size()) return false;
    for (const auto& s : spans) {
      std::uint64_t len = 0;
      if (!read_u64(f, len) || len != s.size()) return false;
      f.read(reinterpret_cast<char*>(s.data()),
             static_cast<std::streamsize>(len * sizeof(float)));
      if (!f) return false;
    }
  }
  return true;
}

}  // namespace nocw::nn
