#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

namespace nocw::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4E4F4357;  // "NOCW"
// v1 files had no version field; the u32 after the magic was the low half of
// the node count, so they now fail the version check (and retrain) instead
// of being misparsed.
constexpr std::uint32_t kVersion = 2;

/// All mutable float state of one layer, in a fixed order.
std::vector<std::span<float>> layer_state(Layer& layer) {
  std::vector<std::span<float>> spans;
  if (!layer.kernel().empty()) spans.push_back(layer.kernel());
  if (!layer.bias().empty()) spans.push_back(layer.bias());
  if (layer.type() == LayerType::BatchNorm) {
    auto& bn = static_cast<BatchNorm&>(layer);
    spans.push_back(bn.moving_mean());
    spans.push_back(bn.moving_var());
  }
  return spans;
}

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Byte-offset-tracking reader: every short read throws SerializeError
/// naming what was being parsed and where the file ran out.
struct CheckpointReader {
  std::ifstream f;
  std::size_t offset = 0;

  void read_bytes(void* dst, std::size_t n, const std::string& what) {
    f.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!f) {
      const auto got = static_cast<std::size_t>(std::max<std::streamsize>(
          f.gcount(), 0));
      throw SerializeError("load_weights: file truncated reading " + what +
                               ": wanted " + std::to_string(n) +
                               " bytes, got " + std::to_string(got),
                           offset + got);
    }
    offset += n;
  }

  std::uint32_t read_u32(const std::string& what) {
    std::uint32_t v = 0;
    read_bytes(&v, sizeof(v), what);
    return v;
  }

  std::uint64_t read_u64(const std::string& what) {
    std::uint64_t v = 0;
    read_bytes(&v, sizeof(v), what);
    return v;
  }
};

}  // namespace

bool save_weights(const Graph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::uint32_t magic = kMagic;
  const std::uint32_t version = kVersion;
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  f.write(reinterpret_cast<const char*>(&version), sizeof(version));
  write_u64(f, graph.node_count());
  // const_cast: layer_state needs mutable spans; saving only reads them.
  auto& g = const_cast<Graph&>(graph);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    Layer& layer = g.layer(static_cast<int>(i));
    const std::string& name = layer.name();
    write_u64(f, name.size());
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto spans = layer_state(layer);
    write_u64(f, spans.size());
    for (const auto& s : spans) {
      write_u64(f, s.size());
      f.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(f);
}

bool load_weights(Graph& graph, const std::string& path) {
  CheckpointReader r;
  r.f.open(path, std::ios::binary);
  if (!r.f) return false;  // missing file: recoverable, caller retrains

  const std::uint32_t magic = r.read_u32("magic");
  if (magic != kMagic) {
    throw SerializeError("load_weights: bad magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08X", magic);
      return std::string(buf);
    }() + ", not a NOCW checkpoint", 0);
  }
  const std::uint32_t version = r.read_u32("format version");
  if (version != kVersion) {
    throw SerializeError("load_weights: unsupported checkpoint version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ")",
                         sizeof(kMagic));
  }
  const std::uint64_t nodes = r.read_u64("node count");
  if (nodes != graph.node_count()) {
    throw SerializeError("load_weights: checkpoint holds " +
                             std::to_string(nodes) + " nodes, graph has " +
                             std::to_string(graph.node_count()),
                         r.offset - sizeof(std::uint64_t));
  }
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    Layer& layer = graph.layer(static_cast<int>(i));
    const std::string label = "layer " + std::to_string(i);
    const std::uint64_t name_len = r.read_u64(label + " name length");
    if (name_len > 4096) {
      throw SerializeError("load_weights: " + label + " name length " +
                               std::to_string(name_len) +
                               " implausible, file is corrupt",
                           r.offset - sizeof(std::uint64_t));
    }
    std::string name(name_len, '\0');
    const std::size_t name_at = r.offset;
    r.read_bytes(name.data(), name_len, label + " name");
    if (name != layer.name()) {
      throw SerializeError("load_weights: " + label + " is '" + name +
                               "', graph expects '" + layer.name() +
                               "' — wrong architecture or corrupt file",
                           name_at);
    }
    const std::uint64_t span_count = r.read_u64(label + " span count");
    const auto spans = layer_state(layer);
    if (span_count != spans.size()) {
      throw SerializeError("load_weights: " + label + " ('" + name +
                               "') holds " + std::to_string(span_count) +
                               " parameter spans, graph expects " +
                               std::to_string(spans.size()),
                           r.offset - sizeof(std::uint64_t));
    }
    for (std::size_t si = 0; si < spans.size(); ++si) {
      const std::uint64_t len = r.read_u64(label + " span length");
      if (len != spans[si].size()) {
        throw SerializeError("load_weights: " + label + " ('" + name +
                                 "') span " + std::to_string(si) + " holds " +
                                 std::to_string(len) +
                                 " floats, graph expects " +
                                 std::to_string(spans[si].size()),
                             r.offset - sizeof(std::uint64_t));
      }
      r.read_bytes(spans[si].data(), len * sizeof(float),
                   label + " ('" + name + "') span " + std::to_string(si));
    }
  }
  return true;
}

}  // namespace nocw::nn
