#include "obs/timeseries.hpp"

#include <sstream>
#include <utility>

#include "obs/jsonfmt.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/env.hpp"

namespace nocw::obs {


TimeSeries::TimeSeries(std::string name, std::string unit,
                       std::size_t capacity)
    : name_(std::move(name)), unit_(std::move(unit)), capacity_(capacity) {
  NOCW_CHECK(!name_.empty());
  NOCW_CHECK(unit_allowed(unit_));
  // Compaction halves the size; capacity below 4 would degenerate into
  // keeping a single point forever.
  NOCW_CHECK_GE(capacity_, std::size_t{4});
  points_.reserve(capacity_);
}

void TimeSeries::append(std::uint64_t cycle, double value) {
  if (!points_.empty()) {
    NOCW_CHECK_GE(cycle, points_.back().cycle);
  }
  if (points_.size() == capacity_) {
    // Drop every second point (odd indices): uniform decimation that keeps
    // the first point, halves the footprint, and doubles the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < points_.size(); r += 2) {
      points_[w++] = points_[r];
    }
    points_.resize(w);
    stride_ *= 2;
  }
  points_.push_back(SeriesPoint{cycle, value});
}

TimeSeriesSet::TimeSeriesSet(std::size_t capacity) : capacity_(capacity) {
  NOCW_CHECK_GE(capacity_, std::size_t{4});
}

void TimeSeriesSet::append(std::string_view name, std::string_view unit,
                           std::uint64_t cycle, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      TimeSeries(std::string(name), std::string(unit),
                                 capacity_))
             .first;
  } else {
    NOCW_CHECK_EQ(it->second.unit(), std::string(unit));
  }
  it->second.append(cycle, value);
}

bool TimeSeriesSet::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.find(name) != series_.end();
}

TimeSeries TimeSeriesSet::series(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  NOCW_CHECK(it != series_.end());
  return it->second;
}

std::vector<std::string> TimeSeriesSet::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesSet::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

void TimeSeriesSet::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

std::string TimeSeriesSet::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema\":\"nocw.timeseries.v1\",\"series\":[\n";
  std::size_t i = 0;
  for (const auto& [name, s] : series_) {
    os << "{\"name\":\"" << json_escape(name) << "\",\"unit\":\""
       << json_escape(s.unit()) << "\",\"stride\":" << s.compaction_stride()
       << ",\"points\":[";
    for (std::size_t p = 0; p < s.points().size(); ++p) {
      if (p > 0) os << ',';
      os << '[' << s.points()[p].cycle << ','
         << json_number(s.points()[p].value) << ']';
    }
    os << "]}" << (++i < series_.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

std::string TimeSeriesSet::to_csv() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "series,unit,cycle,value\n";
  for (const auto& [name, s] : series_) {
    for (const SeriesPoint& p : s.points()) {
      os << csv_escape(name) << ',' << csv_escape(s.unit()) << ',' << p.cycle
         << ',' << json_number(p.value) << '\n';
    }
  }
  return os.str();
}

std::uint64_t series_interval_cycles() {
  return static_cast<std::uint64_t>(env_int("NOCW_TS_INTERVAL", 256, 1));
}

std::size_t series_capacity() {
  return static_cast<std::size_t>(
      env_int("NOCW_TS_CAP",
              static_cast<std::int64_t>(TimeSeriesSet::kDefaultCapacity), 4));
}

}  // namespace nocw::obs
