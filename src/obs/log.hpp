// Progress/diagnostic log sink for benches, examples and evaluation drivers.
//
// Library code returns values and never prints; the *drivers* around it still
// want progress lines ("training LeNet-5...", "computing probes..."). Routing
// those through obs::log() instead of raw printf gives one switch — NOCW_QUIET
// — that silences every progress line at once (CI logs, scripted sweeps),
// while result tables keep flowing through bench::emit / util/table. The
// repo lint bans std::printf in bench/ outside the sanctioned emission point,
// so a new progress print cannot quietly bypass the switch.
#pragma once

#include <cstdarg>

namespace nocw::obs {

/// True when NOCW_QUIET is set to a nonzero value (read once per process).
[[nodiscard]] bool quiet() noexcept;

/// Test/driver override for the NOCW_QUIET switch.
void set_quiet(bool quiet) noexcept;

/// printf-style progress line to stdout, suppressed when quiet(). A trailing
/// newline is NOT added; callers keep full printf control. Returns true when
/// the line was actually emitted (false under NOCW_QUIET), so tests can
/// assert the switch works without capturing stdout.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
bool log(const char* fmt, ...);

/// va_list form of log(), for wrappers.
bool vlog(const char* fmt, std::va_list args);

}  // namespace nocw::obs
