#include "obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace nocw::obs {

namespace {

const char* process_name(std::uint32_t pid) noexcept {
  switch (pid) {
    case kPidAccel: return "accelerator";
    case kPidNoc: return "noc";
    case kPidDecomp: return "decompressor";
    case kPidEval: return "eval";
    case kPidServe: return "serving";
    default: return "nocw";
  }
}

const char* category_label(std::uint32_t cat) noexcept {
  switch (cat) {
    case kCatNoc: return "noc";
    case kCatMac: return "mac";
    case kCatDecomp: return "decomp";
    case kCatLayer: return "layer";
    case kCatMem: return "mem";
    case kCatEval: return "eval";
    case kCatServe: return "serve";
    default: return "misc";
  }
}

/// 16-hex-digit id string. Ids are exported as strings, not JSON numbers:
/// span ids routinely exceed 2^53 and would silently lose bits in any
/// double-based JSON reader (including Perfetto's).
std::string hex_id(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are ASCII
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_chrome_json(std::span<const TraceEvent> events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // process_name metadata first, one entry per pid seen.
  std::map<std::uint32_t, bool> pids;
  for (const TraceEvent& ev : events) pids.emplace(ev.pid, true);
  for (const auto& [pid, unused] : pids) {
    (void)unused;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << process_name(pid) << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << category_label(ev.cat) << "\",\"ph\":\"" << ev.ph
       << "\",\"ts\":" << ev.ts;
    if (ev.ph == 'X') os << ",\"dur\":" << ev.dur;
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
    const bool has_ids = ev.trace_id != 0;
    if (ev.arg_name != nullptr || has_ids) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (ev.arg_name != nullptr) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", ev.arg);
        os << "\"" << ev.arg_name << "\":" << buf;
        first_arg = false;
      }
      if (has_ids) {
        if (!first_arg) os << ",";
        os << "\"trace\":\"" << hex_id(ev.trace_id) << "\",\"span\":\""
           << hex_id(ev.span_id) << "\"";
        if (ev.parent_span_id != 0) {
          os << ",\"parent\":\"" << hex_id(ev.parent_span_id) << "\"";
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
        "\"tool\":\"nocw\",\"timebase\":\"1 simulated cycle = 1 us\"}}\n";
  return os.str();
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<TraceEvent> events = Tracer::global().collect();
  const std::string json = to_chrome_json(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace nocw::obs
