#include "obs/noc_stats_bridge.hpp"

#include <string>

namespace nocw::obs {

namespace {

using noc::NocStats;

// One entry per uint64 field of NocStats, in declaration order. When you add
// a counter to NocStats, add its row here (the static_assert below will
// refuse to compile until you do) and keep tests/obs/registry_test.cpp's
// distinct-value round trip passing.
constexpr NocStatsField kFields[] = {
    {"cycles", "cycles", &NocStats::cycles},
    {"flits_injected", "flits", &NocStats::flits_injected},
    {"flits_ejected", "flits", &NocStats::flits_ejected},
    {"packets_injected", "packets", &NocStats::packets_injected},
    {"packets_ejected", "packets", &NocStats::packets_ejected},
    {"router_traversals", "events", &NocStats::router_traversals},
    {"link_traversals", "events", &NocStats::link_traversals},
    {"buffer_writes", "events", &NocStats::buffer_writes},
    {"buffer_reads", "events", &NocStats::buffer_reads},
    {"payload_bit_flips", "bits", &NocStats::payload_bit_flips},
    {"link_fault_cycles", "cycles", &NocStats::link_fault_cycles},
    {"router_stall_cycles", "cycles", &NocStats::router_stall_cycles},
    {"crc_flits_injected", "flits", &NocStats::crc_flits_injected},
    {"crc_flit_events", "events", &NocStats::crc_flit_events},
    {"crc_failures", "packets", &NocStats::crc_failures},
    {"packets_delivered", "packets", &NocStats::packets_delivered},
    {"retransmissions", "packets", &NocStats::retransmissions},
    {"packets_dropped", "packets", &NocStats::packets_dropped},
};

constexpr std::size_t kFieldCount = sizeof(kFields) / sizeof(kFields[0]);

// Layout tripwire: NocStats is kFieldCount uint64 counters plus one
// RunningStats (packet_latency). All members are 8-byte aligned on LP64, so
// the sizes add exactly; a new field that is not in kFields changes
// sizeof(NocStats) and breaks this assert at compile time. (Skipped on
// non-64-bit ABIs, where padding could differ; the runtime round-trip test
// still covers those.)
static_assert(sizeof(void*) != 8 ||
                  sizeof(NocStats) ==
                      kFieldCount * sizeof(std::uint64_t) +
                          sizeof(RunningStats),
              "noc::NocStats and obs::noc_stats_bridge kFields diverged: "
              "add the new counter to the table (name + unit) and extend the "
              "round-trip test in tests/obs/registry_test.cpp");

}  // namespace

std::span<const NocStatsField> noc_stats_fields() noexcept {
  return {kFields, kFieldCount};
}

void snapshot_noc_stats(Registry& reg, const noc::NocStats& stats,
                        std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  for (const NocStatsField& f : kFields) {
    reg.set_counter(base + f.name, f.unit, stats.*(f.member));
  }
  const RunningStats& lat = stats.packet_latency;
  reg.set_gauge(base + "packet_latency_mean", "cycles", lat.mean());
  reg.set_gauge(base + "packet_latency_min", "cycles",
                lat.count() ? lat.min() : 0.0);
  reg.set_gauge(base + "packet_latency_max", "cycles",
                lat.count() ? lat.max() : 0.0);
  reg.set_counter(base + "packet_latency_count", "samples",
                  static_cast<std::uint64_t>(lat.count()));
  reg.set_gauge(base + "throughput", "ratio", stats.throughput());
}

}  // namespace nocw::obs
