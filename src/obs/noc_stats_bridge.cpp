#include "obs/noc_stats_bridge.hpp"

#include <string>

namespace nocw::obs {

namespace {

using noc::NocStats;

/// Accessor for a plain uint64 member.
template <std::uint64_t NocStats::* M>
std::uint64_t raw(const NocStats& s) {
  return s.*M;
}

/// Accessor for a strong-typed member (units::Cycles / units::Flits): the
/// registry exports the raw representation; the unit column carries the
/// dimension, and the static_assert below pins it to the member's own
/// registry unit so the two can never disagree.
template <auto M>
std::uint64_t typed(const NocStats& s) {
  return (s.*M).value();
}

// One entry per uint64-representation field of NocStats, in declaration
// order. When you add a counter to NocStats, add its row here (the
// static_assert below will refuse to compile until you do) and keep
// tests/obs/registry_test.cpp's distinct-value round trip passing.
constexpr NocStatsField kFields[] = {
    {"cycles", "cycles", typed<&NocStats::cycles>},
    {"flits_injected", "flits", typed<&NocStats::flits_injected>},
    {"flits_ejected", "flits", typed<&NocStats::flits_ejected>},
    {"packets_injected", "packets", raw<&NocStats::packets_injected>},
    {"packets_ejected", "packets", raw<&NocStats::packets_ejected>},
    {"router_traversals", "events", raw<&NocStats::router_traversals>},
    {"link_traversals", "events", raw<&NocStats::link_traversals>},
    {"buffer_writes", "events", raw<&NocStats::buffer_writes>},
    {"buffer_reads", "events", raw<&NocStats::buffer_reads>},
    {"payload_bit_flips", "bits", raw<&NocStats::payload_bit_flips>},
    {"link_fault_cycles", "cycles", typed<&NocStats::link_fault_cycles>},
    {"router_stall_cycles", "cycles", typed<&NocStats::router_stall_cycles>},
    {"crc_flits_injected", "flits", typed<&NocStats::crc_flits_injected>},
    {"crc_flit_events", "events", raw<&NocStats::crc_flit_events>},
    {"crc_failures", "packets", raw<&NocStats::crc_failures>},
    {"packets_delivered", "packets", raw<&NocStats::packets_delivered>},
    {"retransmissions", "packets", raw<&NocStats::retransmissions>},
    {"packets_dropped", "packets", raw<&NocStats::packets_dropped>},
    {"route_rebuilds", "count", raw<&NocStats::route_rebuilds>},
    {"links_quarantined", "links", raw<&NocStats::links_quarantined>},
    {"routers_quarantined", "routers", raw<&NocStats::routers_quarantined>},
    {"flits_flushed", "flits", typed<&NocStats::flits_flushed>},
    {"packets_rerouted", "packets", raw<&NocStats::packets_rerouted>},
    {"packets_undeliverable", "packets",
     raw<&NocStats::packets_undeliverable>},
    {"recovery_cycles", "cycles", typed<&NocStats::recovery_cycles>},
};

constexpr std::size_t kFieldCount = sizeof(kFields) / sizeof(kFields[0]);

// Unit-vocabulary tripwire: every unit string in the table must come from
// the closed vocabulary in src/util/units_vocab.inc. Checked at compile
// time, so an out-of-vocabulary unit never reaches the registry.
constexpr bool all_units_in_vocab() {
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (!units::vocab_has(kFields[i].unit)) return false;
  }
  return true;
}
static_assert(all_units_in_vocab(),
              "noc_stats_bridge unit not in src/util/units_vocab.inc");

// Dimension/unit tripwire: the strong-typed members' own registry units
// must match the unit column the bridge exports them under.
static_assert(decltype(NocStats::cycles)::dim::registry_unit == "cycles");
static_assert(decltype(NocStats::flits_injected)::dim::registry_unit ==
              "flits");

// Layout tripwire: NocStats is kFieldCount uint64 counters plus one
// RunningStats (packet_latency). All members are 8-byte aligned on LP64, so
// the sizes add exactly; a new field that is not in kFields changes
// sizeof(NocStats) and breaks this assert at compile time. (Skipped on
// non-64-bit ABIs, where padding could differ; the runtime round-trip test
// still covers those.)
static_assert(sizeof(void*) != 8 ||
                  sizeof(NocStats) ==
                      kFieldCount * sizeof(std::uint64_t) +
                          sizeof(RunningStats),
              "noc::NocStats and obs::noc_stats_bridge kFields diverged: "
              "add the new counter to the table (name + unit) and extend the "
              "round-trip test in tests/obs/registry_test.cpp");

}  // namespace

std::span<const NocStatsField> noc_stats_fields() noexcept {
  return {kFields, kFieldCount};
}

void snapshot_noc_stats(Registry& reg, const noc::NocStats& stats,
                        std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  for (const NocStatsField& f : kFields) {
    reg.set_counter(base + f.name, f.unit, f.get(stats));
  }
  const RunningStats& lat = stats.packet_latency;
  reg.set_gauge(base + "packet_latency_mean", "cycles", lat.mean());
  reg.set_gauge(base + "packet_latency_min", "cycles",
                lat.count() ? lat.min() : 0.0);
  reg.set_gauge(base + "packet_latency_max", "cycles",
                lat.count() ? lat.max() : 0.0);
  reg.set_counter(base + "packet_latency_count", "samples",
                  static_cast<std::uint64_t>(lat.count()));
  reg.set_gauge(base + "throughput", "ratio", stats.throughput().value());
}

}  // namespace nocw::obs
