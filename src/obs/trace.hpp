// Cycle-level event tracer: ring-buffered, per-thread, zero when disabled.
//
// Emitters (the NoC cycle engine, the accelerator simulator, the
// decompressor FSM) record instants and spans stamped in *simulated cycles*;
// obs/trace_export turns the merged stream into Chrome-trace/Perfetto JSON
// that opens directly in ui.perfetto.dev. Three layers of gating keep the
// disabled path free:
//
//   1. compile-out: building with -DNOCW_TRACE_DISABLED (CMake option
//      NOCW_TRACING=OFF) turns every NOCW_TRACE_* macro into ((void)0) and
//      NOCW_TRACE_ON(cat) into the constant false, so instrumented branches
//      fold away entirely;
//   2. process switch: NOCW_TRACE=1 enables recording at runtime (default
//      off); the check is one relaxed atomic load, and hot emitters cache it
//      in a bool at construction;
//   3. category mask: NOCW_TRACE_CATEGORIES selects event families
//      ("noc,mac,decomp,layer,mem,eval" or "all"), and NOCW_TRACE_SAMPLE=N
//      keeps only every Nth router-hop instant (deterministic, counter-based)
//      so a multi-million-flit layer traces at bounded cost.
//
// Buffers are strictly per-thread (registered on first record), sized by
// NOCW_TRACE_BUF events each; when full they drop the *oldest* events and
// count the drops, so a trace always holds the most recent window. Tracing
// never feeds back into simulation state: results are bit-identical with
// tracing on, off, or compiled out.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nocw::obs {

/// Event families, maskable via NOCW_TRACE_CATEGORIES.
enum Category : std::uint32_t {
  kCatNoc = 1u << 0,     ///< packet inject/eject, router hops, retransmission
  kCatMac = 1u << 1,     ///< MAC-lane busy spans
  kCatDecomp = 1u << 2,  ///< decompressor FSM phases
  kCatLayer = 1u << 3,   ///< layer begin/end markers
  kCatMem = 1u << 4,     ///< DRAM phase spans
  kCatEval = 1u << 5,    ///< evaluation-driver spans
  kCatServe = 1u << 6,   ///< serving layer: enqueue/shed/batch/request
  kCatAll = 0xffffffffu,
};

/// Stable process ids for the Perfetto track hierarchy (process = subsystem,
/// thread = node/lane within it). Exported as process_name metadata.
inline constexpr std::uint32_t kPidAccel = 1;   ///< layer/phase spans
inline constexpr std::uint32_t kPidNoc = 2;     ///< per-router instants
inline constexpr std::uint32_t kPidDecomp = 3;  ///< decompressor FSM
inline constexpr std::uint32_t kPidEval = 4;    ///< evaluation drivers
inline constexpr std::uint32_t kPidServe = 5;   ///< serving layer (ServeSim)

/// "noc,mac" -> mask; "all"/"" -> kCatAll; unknown names are ignored.
[[nodiscard]] std::uint32_t parse_categories(const std::string& csv) noexcept;

/// One trace event. ph follows the Chrome trace format: 'i' instant,
/// 'X' complete span (ts + dur), 'C' counter sample.
struct TraceEvent {
  std::string name;
  char ph = 'i';
  std::uint32_t cat = kCatNoc;
  std::uint32_t pid = kPidNoc;
  std::uint32_t tid = 0;
  std::uint64_t ts = 0;   ///< simulated cycle (exported as microseconds)
  std::uint64_t dur = 0;  ///< span length in cycles ('X' only)
  const char* arg_name = nullptr;  ///< optional single numeric arg (static)
  double arg = 0.0;
  /// Request attribution (obs/trace_context.hpp). Zero = unattributed;
  /// Tracer::record() fills these from the thread-local context when the
  /// event does not carry its own, so a serving-driver replay re-parents
  /// the accel/noc phase spans under the owning request's span tree.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

struct TraceContext;  // obs/trace_context.hpp

/// Copy `ctx` onto `ev`'s attribution fields. Lives here (not in callers)
/// so tools/lint.py's [trace-ctx] rule can pin raw trace-id writes to the
/// trace plumbing itself.
void stamp(TraceEvent& ev, const TraceContext& ctx) noexcept;
/// Raw-id overload for re-emitting stored span trees (serve/reqtrace):
/// same lint boundary, no TraceContext required.
void stamp(TraceEvent& ev, std::uint64_t trace_id, std::uint64_t span_id,
           std::uint64_t parent_span_id) noexcept;

class Tracer {
 public:
  /// Master switch (NOCW_TRACE, overridable for tests/benches).
  [[nodiscard]] static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

  /// Category mask (NOCW_TRACE_CATEGORIES).
  [[nodiscard]] static bool category_on(std::uint32_t cat) noexcept;
  static void set_categories(std::uint32_t mask) noexcept;

  /// Router-hop sampling period N >= 1 (NOCW_TRACE_SAMPLE): emitters record
  /// every Nth high-frequency instant. Deterministic: the counter lives in
  /// the emitter, not the clock.
  [[nodiscard]] static std::uint32_t sample_every() noexcept;
  static void set_sample_every(std::uint32_t n) noexcept;

  /// Append to the calling thread's ring buffer (registering it on first
  /// use). The thread-local time base (see ScopedTimeBase) is added to ts.
  void record(TraceEvent ev);
  void record_instant(std::uint32_t cat, std::string name, std::uint32_t pid,
                      std::uint32_t tid, std::uint64_t ts,
                      const char* arg_name = nullptr, double arg = 0.0);
  void record_span(std::uint32_t cat, std::string name, std::uint32_t pid,
                   std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
                   const char* arg_name = nullptr, double arg = 0.0);

  /// Merge every thread's buffer, ordered by (pid, tid, ts). Must be called
  /// outside parallel regions (after the pool joined), like any aggregation
  /// over per-thread state.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Events currently held / dropped (ring overwrote the oldest).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all buffered events (buffers stay registered). Same caveat as
  /// collect(): only between parallel regions.
  void clear();

  /// Per-thread ring capacity in events (NOCW_TRACE_BUF, default 1<<16).
  [[nodiscard]] static std::size_t buffer_capacity() noexcept;
  /// Test-only override of the ring capacity. Takes effect for events
  /// recorded after the call; set it before any thread records so every
  /// ring sees one consistent bound (tests/obs/trace_test.cpp forces a
  /// tiny ring to exercise drop-oldest accounting).
  static void set_buffer_capacity(std::size_t cap) noexcept;

  static Tracer& global();

 private:
  struct Buffer {
    std::vector<TraceEvent> ring;  ///< capacity-bounded, oldest overwritten
    std::size_t next = 0;          ///< write cursor once the ring is full
    std::uint64_t total = 0;       ///< events ever recorded by this thread
  };

  Buffer& local_buffer();

  mutable std::mutex mu_;  ///< guards buffers_ registration and collection
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Thread-local cycle offset added to every recorded ts. The accelerator
/// simulator stacks layers on one global timeline by setting the base to the
/// cumulative cycle count before each layer; the NoC engine, which only
/// knows phase-local cycles, stamps `time_base() + local_cycle`.
[[nodiscard]] std::uint64_t time_base() noexcept;

/// RAII override of the thread-local time base (absolute, not additive).
class ScopedTimeBase {
 public:
  explicit ScopedTimeBase(std::uint64_t base) noexcept;
  ~ScopedTimeBase();
  ScopedTimeBase(const ScopedTimeBase&) = delete;
  ScopedTimeBase& operator=(const ScopedTimeBase&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace nocw::obs

// Emission macros. The disabled build folds the whole call away; the enabled
// build checks the process switch + category mask before evaluating any
// argument expression.
#if defined(NOCW_TRACE_DISABLED)
#define NOCW_TRACE_ON(cat) false
#define NOCW_TRACE_INSTANT(cat, name, pid, tid, ts) ((void)0)
#define NOCW_TRACE_INSTANT_ARG(cat, name, pid, tid, ts, arg_name, arg) \
  ((void)0)
#define NOCW_TRACE_SPAN(cat, name, pid, tid, ts, dur) ((void)0)
#define NOCW_TRACE_SPAN_ARG(cat, name, pid, tid, ts, dur, arg_name, arg) \
  ((void)0)
#else
#define NOCW_TRACE_ON(cat)                \
  (::nocw::obs::Tracer::enabled() &&      \
   ::nocw::obs::Tracer::category_on(cat))
#define NOCW_TRACE_INSTANT(cat, name, pid, tid, ts)                        \
  do {                                                                     \
    if (NOCW_TRACE_ON(cat)) {                                              \
      ::nocw::obs::Tracer::global().record_instant(cat, name, pid, tid,    \
                                                   ts);                    \
    }                                                                      \
  } while (false)
#define NOCW_TRACE_INSTANT_ARG(cat, name, pid, tid, ts, arg_name, arg)     \
  do {                                                                     \
    if (NOCW_TRACE_ON(cat)) {                                              \
      ::nocw::obs::Tracer::global().record_instant(cat, name, pid, tid,    \
                                                   ts, arg_name, arg);     \
    }                                                                      \
  } while (false)
#define NOCW_TRACE_SPAN(cat, name, pid, tid, ts, dur)                      \
  do {                                                                     \
    if (NOCW_TRACE_ON(cat)) {                                              \
      ::nocw::obs::Tracer::global().record_span(cat, name, pid, tid, ts,   \
                                                dur);                      \
    }                                                                      \
  } while (false)
#define NOCW_TRACE_SPAN_ARG(cat, name, pid, tid, ts, dur, arg_name, arg)   \
  do {                                                                     \
    if (NOCW_TRACE_ON(cat)) {                                              \
      ::nocw::obs::Tracer::global().record_span(cat, name, pid, tid, ts,   \
                                                dur, arg_name, arg);       \
    }                                                                      \
  } while (false)
#endif
