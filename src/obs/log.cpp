#include "obs/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/env.hpp"

namespace nocw::obs {

namespace {

std::atomic<bool>& quiet_flag() {
  static std::atomic<bool> flag{env_int("NOCW_QUIET", 0) != 0};
  return flag;
}

}  // namespace

bool quiet() noexcept { return quiet_flag().load(std::memory_order_relaxed); }

void set_quiet(bool quiet) noexcept {
  quiet_flag().store(quiet, std::memory_order_relaxed);
}

bool vlog(const char* fmt, std::va_list args) {
  if (quiet()) return false;
  std::vfprintf(stdout, fmt, args);
  std::fflush(stdout);
  return true;
}

bool log(const char* fmt, ...) {
  if (quiet()) return false;
  std::va_list args;
  va_start(args, fmt);
  const bool emitted = vlog(fmt, args);
  va_end(args);
  return emitted;
}

}  // namespace nocw::obs
