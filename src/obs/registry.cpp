#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/jsonfmt.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace nocw::obs {

namespace {

const char* kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

bool unit_allowed(std::string_view unit) noexcept {
  // The vocabulary lives in src/util/units_vocab.inc — one definition shared
  // with units.hpp's dimension tags and the tools/lint.py [metric] rule.
  return units::vocab_has(unit);
}

Registry::Metric& Registry::upsert(std::string_view name,
                                   std::string_view unit, MetricKind kind) {
  NOCW_CHECK(!name.empty());
  NOCW_CHECK(unit_allowed(unit));
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.unit = std::string(unit);
    m.kind = kind;
    it = metrics_.emplace(std::string(name), std::move(m)).first;
  } else {
    // A name must mean one thing: same kind, same unit, everywhere.
    NOCW_CHECK(it->second.kind == kind);
    NOCW_CHECK_EQ(it->second.unit, std::string(unit));
  }
  return it->second;
}

void Registry::set_counter(std::string_view name, std::string_view unit,
                           std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  upsert(name, unit, MetricKind::Counter).value = static_cast<double>(value);
}

void Registry::add_counter(std::string_view name, std::string_view unit,
                           std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  upsert(name, unit, MetricKind::Counter).value +=
      static_cast<double>(delta);
}

void Registry::set_gauge(std::string_view name, std::string_view unit,
                         double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  upsert(name, unit, MetricKind::Gauge).value = value;
}

void Registry::observe(std::string_view name, std::string_view unit,
                       double sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  upsert(name, unit, MetricKind::Histogram).samples.push_back(sample);
}

bool Registry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_.find(name) != metrics_.end();
}

double Registry::value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  NOCW_CHECK(it != metrics_.end());
  if (it->second.kind == MetricKind::Histogram) {
    return static_cast<double>(it->second.samples.size());
  }
  return it->second.value;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) {
    MetricSnapshot s;
    s.name = name;
    s.unit = m.unit;
    s.kind = m.kind;
    if (m.kind == MetricKind::Histogram) {
      s.count = m.samples.size();
      RunningStats rs;
      for (const double v : m.samples) rs.add(v);
      s.mean = rs.mean();
      s.min = rs.count() ? rs.min() : 0.0;
      s.max = rs.count() ? rs.max() : 0.0;
      std::vector<double> sorted(m.samples);
      std::sort(sorted.begin(), sorted.end());
      s.p50 = sorted.empty() ? 0.0 : percentile_sorted(sorted, 50.0);
      s.p95 = sorted.empty() ? 0.0 : percentile_sorted(sorted, 95.0);
      s.p99 = sorted.empty() ? 0.0 : percentile_sorted(sorted, 99.0);
    } else {
      s.value = m.value;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

std::string Registry::to_json() const {
  const std::vector<MetricSnapshot> metrics = snapshot();
  std::ostringstream os;
  os << "{\"metrics\":[\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& s = metrics[i];
    os << "  {\"name\":\"" << json_escape(s.name) << "\",\"kind\":\""
       << kind_name(s.kind) << "\",\"unit\":\"" << json_escape(s.unit)
       << "\"";
    if (s.kind == MetricKind::Histogram) {
      os << ",\"count\":" << s.count << ",\"mean\":" << json_number(s.mean)
         << ",\"min\":" << json_number(s.min)
         << ",\"max\":" << json_number(s.max)
         << ",\"p50\":" << json_number(s.p50)
         << ",\"p95\":" << json_number(s.p95)
         << ",\"p99\":" << json_number(s.p99);
    } else {
      os << ",\"value\":" << json_number(s.value);
    }
    os << "}" << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

std::string Registry::to_csv() const {
  const std::vector<MetricSnapshot> metrics = snapshot();
  std::ostringstream os;
  os << "name,kind,unit,value,count,mean,min,max,p50,p95,p99\n";
  for (const MetricSnapshot& s : metrics) {
    os << csv_escape(s.name) << ',' << kind_name(s.kind) << ','
       << csv_escape(s.unit) << ',';
    if (s.kind == MetricKind::Histogram) {
      os << ',' << s.count << ',' << json_number(s.mean) << ','
         << json_number(s.min) << ',' << json_number(s.max) << ','
         << json_number(s.p50) << ',' << json_number(s.p95) << ','
         << json_number(s.p99);
    } else {
      os << json_number(s.value) << ",,,,,,,";
    }
    os << '\n';
  }
  return os.str();
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

}  // namespace nocw::obs
