#include "obs/manifest.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "obs/jsonfmt.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

// Environment capture walks the process environment block; POSIX-only, like
// the rest of the repo's tooling.
extern char** environ;  // NOLINT(readability-redundant-declaration)

namespace nocw::obs {

namespace {

// Configure-time facts, injected by src/obs/CMakeLists.txt. Guarded so a
// non-CMake compile of this TU still builds.
#ifndef NOCW_BUILD_TYPE
#define NOCW_BUILD_TYPE "unknown"
#endif
#ifndef NOCW_COMPILER_ID
#define NOCW_COMPILER_ID "unknown"
#endif
#ifndef NOCW_SOURCE_DIR
#define NOCW_SOURCE_DIR ""
#endif

std::string first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
  }
  return line;
}

// Resolve the source tree's HEAD without shelling out: a detached HEAD is
// the sha itself; a symbolic ref is followed through the loose ref file,
// then packed-refs. "unknown" when the tree is not a git checkout (tarball
// builds still get a valid manifest).
std::string read_git_sha(const std::string& source_dir) {
  if (source_dir.empty()) return "unknown";
  const std::string head = first_line(source_dir + "/.git/HEAD");
  if (head.empty()) return "unknown";
  if (head.rfind("ref: ", 0) != 0) return head;  // detached HEAD
  const std::string ref = head.substr(5);
  const std::string loose = first_line(source_dir + "/.git/" + ref);
  if (!loose.empty()) return loose;
  std::ifstream packed(source_dir + "/.git/packed-refs");
  std::string line;
  while (packed && std::getline(packed, line)) {
    // "<sha> <ref>" records; comment/peeled lines start with '#'/'^'.
    if (!line.empty() && line.size() > ref.size() &&
        line.compare(line.size() - ref.size(), ref.size(), ref) == 0 &&
        line[0] != '#' && line[0] != '^') {
      return line.substr(0, line.find(' '));
    }
  }
  return "unknown";
}

std::map<std::string, std::string> capture_env() {
  std::map<std::string, std::string> out;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string kv(*e);
    if (kv.rfind("NOCW_", 0) != 0 && kv.rfind("REPRO_", 0) != 0) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) continue;
    out.emplace(kv.substr(0, eq), kv.substr(eq + 1));
  }
  return out;
}

void emit_string_map(std::ostringstream& os, const char* key,
                     const std::map<std::string, std::string>& m,
                     bool trailing_comma) {
  os << "\"" << key << "\":{";
  std::size_t i = 0;
  for (const auto& [k, v] : m) {
    if (i++ > 0) os << ',';
    os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

std::string RunManifest::to_json() const {
  // One top-level key per line: the schema test and obs_diff.py both lean on
  // this shape, so keep it line-wise even though any JSON parser would cope.
  std::ostringstream os;
  os << "{\"schema\":\"" << json_escape(schema) << "\",\n";
  os << "\"tool\":\"" << json_escape(tool) << "\",\n";
  os << "\"model\":\"" << json_escape(model) << "\",\n";
  os << "\"threads\":" << threads << ",\n";
  os << "\"wall_seconds\":" << json_number(wall_seconds) << ",\n";
  emit_string_map(os, "build", build, /*trailing_comma=*/true);
  emit_string_map(os, "env", env, /*trailing_comma=*/true);
  emit_string_map(os, "config", config, /*trailing_comma=*/true);
  os << "\"metrics\":{";
  std::size_t i = 0;
  for (const auto& [k, v] : metrics) {
    if (i++ > 0) os << ',';
    os << "\"" << json_escape(k) << "\":" << json_number(v);
  }
  os << "}\n}\n";
  return os.str();
}

RunManifest make_manifest(std::string tool, std::string model) {
  RunManifest m;
  m.tool = std::move(tool);
  m.model = std::move(model);
  m.build["git_sha"] =
      env_string("NOCW_GIT_SHA", read_git_sha(NOCW_SOURCE_DIR));
  m.build["build_type"] = NOCW_BUILD_TYPE;
  m.build["compiler"] = NOCW_COMPILER_ID;
#if defined(NOCW_TRACE_DISABLED)
  m.build["tracing"] = "compiled-out";
#else
  m.build["tracing"] = "compiled-in";
#endif
  m.env = capture_env();
  m.threads = static_cast<int>(global_thread_count());
  return m;
}

bool write_manifest(const RunManifest& m, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << m.to_json();
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace nocw::obs
