// Run-provenance manifest: who produced this metric dump, from what source,
// with which knobs.
//
// A BENCH_*.json without provenance cannot be compared across commits — the
// cross-run regression gate (tools/obs_diff.py) needs to know that two runs
// used the same model, δ grid, thread count and build flavour before a
// latency delta means anything. RunManifest carries exactly that: git
// revision (read live from the source tree's .git, env-overridable), build
// type/compiler (baked at configure time), every NOCW_*/REPRO_* environment
// knob that was set, the driver's configuration strings, wall time, and a
// flat name→value map of the run's tier-1 metrics. `to_json()` emits a
// line-wise schema ("nocw.manifest.v1", one top-level key per line) that
// tests/obs/manifest_schema_test.cpp pins and tools/obs_diff.py consumes.
#pragma once

#include <map>
#include <string>

namespace nocw::obs {

struct RunManifest {
  std::string schema = "nocw.manifest.v1";
  std::string tool;   ///< producing binary (bench/example name)
  std::string model;  ///< primary model, "" when not model-scoped

  /// Provenance: git_sha, git_dirty, build_type, compiler, tracing.
  std::map<std::string, std::string> build;
  /// NOCW_* / REPRO_* variables present in the environment at capture time.
  std::map<std::string, std::string> env;
  /// Free-form configuration ("delta_grid", "selected_layer", ...).
  std::map<std::string, std::string> config;
  /// Tier-1 metric summary (latency cycles, energy joules, accuracy, ...).
  std::map<std::string, double> metrics;

  int threads = 0;           ///< resolved worker count (NOCW_THREADS)
  double wall_seconds = 0.0; ///< driver wall time, informational

  /// Line-wise JSON: {"schema":...}\n then one "key":value line per field.
  [[nodiscard]] std::string to_json() const;
};

/// Build a manifest with provenance + environment pre-filled: git revision
/// (env NOCW_GIT_SHA wins, else read from the configured source tree's
/// .git), compile-time build facts, captured NOCW_*/REPRO_* env vars, and
/// the resolved thread count.
[[nodiscard]] RunManifest make_manifest(std::string tool,
                                        std::string model = "");

/// Write `m.to_json()` to `path` (atomically: temp file + rename). Returns
/// false when the file cannot be written.
bool write_manifest(const RunManifest& m, const std::string& path);

}  // namespace nocw::obs
