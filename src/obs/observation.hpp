// Raw observation samples collected from one NoC phase / inference.
//
// The cycle engine exposes where flits actually went (per-link and per-node
// counts) and how long packets actually took (latency samples, queue
// depths); this struct carries those samples from noc::Network through
// accel::AcceleratorSim to the derived reports in obs/report without either
// side depending on the other's types. Latency and queue-depth sampling are
// collected only when the network is observing (tracing enabled or
// Network::set_observation(true)); the count vectors are always cheap and
// always filled.
#pragma once

#include <cstdint>
#include <vector>

namespace nocw::obs {

struct NocObservation {
  /// Flits over each inter-router link, indexed [node * kNumPorts + port]
  /// by the *sending* router's output port.
  std::vector<std::uint64_t> link_flits;
  /// Flits ejected at each node's local port (PE/MI ingestion).
  std::vector<std::uint64_t> node_ejections;
  /// Per-packet injection-to-tail latency in cycles (sampled when observing).
  std::vector<double> packet_latency_cycles;
  /// Per-router buffered-flit occupancy, sampled periodically when observing.
  std::vector<double> queue_depth_flits;
  /// Cycles the observed window ran (utilization denominator).
  std::uint64_t window_cycles = 0;
  /// True when any window contributed (reports skip empty observations).
  bool collected = false;

  /// Element-wise accumulate (layers of one inference share link/node
  /// indexing; sample vectors concatenate).
  void merge(const NocObservation& o);
};

}  // namespace nocw::obs
