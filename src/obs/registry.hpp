// Named, typed metric registry — the export layer over the simulator's
// hot-path counter structs.
//
// The cycle engine keeps its counters in plain structs (noc::NocStats,
// power::EventCounts): field access costs one increment and the layout is
// audited by invariant checks. This registry is the *presentation* of those
// counters: every metric carries a name, an explicit unit from a closed
// vocabulary, and a kind (counter / gauge / histogram), and the whole set
// exports to JSON and CSV in one call. Snapshot bridges (obs/noc_stats_bridge,
// obs/report) copy the structs in; nothing in a simulation hot path touches a
// registry. Unit strings are validated both here (NOCW_CHECK) and statically
// by tools/lint.py's [metric] rule, so a pJ/J-style mix-up cannot ship under
// an unlabeled name.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/units.hpp"

namespace nocw::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// The closed unit vocabulary. Kept in sync with tools/lint.py
/// (METRIC_UNITS); the lint self-test fails if a unit is accepted here that
/// the static rule would reject.
[[nodiscard]] bool unit_allowed(std::string_view unit) noexcept;

/// One exported metric. Counters/gauges carry `value`; histograms carry the
/// sample summary (count/mean/min/max and p50/p95/p99 via util/stats).
struct MetricSnapshot {
  std::string name;
  std::string unit;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Thread-safe metric store. Names are unique across kinds; re-registering a
/// name with a different kind or unit throws nocw::CheckError — the same
/// metric must mean the same thing everywhere it is written.
class Registry {
 public:
  /// Set a monotonically-meaningful event count.
  void set_counter(std::string_view name, std::string_view unit,
                   std::uint64_t value);
  /// Add to a counter, creating it at zero first if needed.
  void add_counter(std::string_view name, std::string_view unit,
                   std::uint64_t delta);
  /// Set a point-in-time level (utilization, accuracy, ratio...).
  void set_gauge(std::string_view name, std::string_view unit, double value);
  /// Append one sample to a histogram metric.
  void observe(std::string_view name, std::string_view unit, double sample);

  // --- typed overloads (util/units) ---
  // The unit string comes from the quantity's dimension tag at compile time,
  // so a typed publish can never carry the wrong label. Dimensions whose
  // registry_unit is empty (Picojoules, Milliwatts, Words, rates) are
  // rejected at compile time: exporting them directly would be off by a
  // scale factor — convert (to_joules, to_watts) and publish that.

  /// Publish an exact typed counter (Cycles, Flits, Bits...).
  template <class Dim, class Rep,
            class = std::enable_if_t<std::is_integral_v<Rep>>>
  void set_counter(std::string_view name, units::Quantity<Dim, Rep> v) {
    static_assert(!Dim::registry_unit.empty(),
                  "this dimension has no registry unit: convert it "
                  "(to_joules / to_watts) before publishing");
    set_counter(name, Dim::registry_unit,
                static_cast<std::uint64_t>(v.value()));
  }

  /// Publish a typed level (Joules, Seconds, Watts, FracCycles...).
  template <class Dim, class Rep>
  void set_gauge(std::string_view name, units::Quantity<Dim, Rep> v) {
    static_assert(!Dim::registry_unit.empty(),
                  "this dimension has no registry unit: convert it "
                  "(to_joules / to_watts) before publishing");
    set_gauge(name, Dim::registry_unit, v.dvalue());
  }

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Counter/gauge value; histogram count. Throws nocw::CheckError when the
  /// metric does not exist.
  [[nodiscard]] double value(std::string_view name) const;

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// {"metrics":[{"name":...,"unit":...,"kind":...,...}]} — one metric per
  /// line, machine-diffable.
  [[nodiscard]] std::string to_json() const;
  /// name,kind,unit,value,count,mean,min,max,p50,p95,p99 rows.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Process-wide registry for drivers that do not thread their own through.
  static Registry& global();

 private:
  struct Metric {
    std::string unit;
    MetricKind kind = MetricKind::Counter;
    double value = 0.0;
    std::vector<double> samples;
  };

  Metric& upsert(std::string_view name, std::string_view unit,
                 MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace nocw::obs
