#include "obs/trace_context.hpp"

namespace nocw::obs {

namespace {

/// splitmix64 finalizer, as used by the other counter-based streams in the
/// tree; the constant pre-xor keeps span-id derivation decorrelated from
/// the serve/fault hash domains even under equal inputs.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

thread_local TraceContext tl_context;

}  // namespace

TraceContext derive_child(const TraceContext& parent,
                          std::uint64_t slot) noexcept {
  TraceContext child;
  child.trace_id = parent.trace_id;
  child.parent_span_id = parent.span_id;
  child.span_id =
      mix64(parent.span_id ^ 0x5350414eull ^  // "SPAN"
            mix64(slot + 0x63746f72ull)) |
      1u;  // never zero: zero means "no attribution"
  return child;
}

const TraceContext& trace_context() noexcept { return tl_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) noexcept
    : prev_(tl_context) {
  tl_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tl_context = prev_; }

}  // namespace nocw::obs
