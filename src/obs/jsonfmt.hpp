// Shared formatting for the observability exports (registry, time series,
// manifests, bench summaries). One implementation so every JSON/CSV surface
// renders the same value to the same bytes — the regression gate diffs these
// files across runs and formatting noise would look like drift.
#pragma once

#include <string>
#include <string_view>

namespace nocw::obs {

/// Shortest decimal string that parses back to exactly `v` (so exports stay
/// diffable without dragging 17 digits everywhere). Non-finite values render
/// as "null": JSON has no NaN/Inf literals.
[[nodiscard]] std::string json_number(double v);

/// Escape for a JSON string body: backslash-escapes quotes and backslashes,
/// drops control characters (names are ASCII identifiers in this repo).
[[nodiscard]] std::string json_escape(std::string_view s);

/// RFC 4180 CSV field: quoted iff it contains a separator, quote, or
/// newline, with embedded quotes doubled.
[[nodiscard]] std::string csv_escape(std::string_view s);

}  // namespace nocw::obs
