#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/jsonfmt.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace nocw::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

}  // namespace

std::uint64_t slo_window_start(std::uint64_t cycle,
                               std::uint64_t window) noexcept {
  return cycle - cycle % window;
}

SloMonitor::SloMonitor(std::size_t num_classes, const SloPolicy& policy)
    : policy_(policy), open_(num_classes), recent_(num_classes) {
  NOCW_CHECK(policy_.window_cycles > 0);
  NOCW_CHECK(policy_.error_budget > 0.0);
}

SloIngest SloMonitor::roll(std::size_t class_id, std::uint64_t cycle) {
  NOCW_CHECK(class_id < open_.size());
  OpenWindow& w = open_[class_id];
  const std::uint64_t start = slo_window_start(cycle, policy_.window_cycles);
  SloIngest ingest;
  if (w.active) {
    // The driver feeds events in non-decreasing cycle order per class.
    NOCW_CHECK(start >= w.start);
    if (start > w.start) close_window(class_id, &ingest);
  }
  if (!w.active) {
    w.active = true;
    w.start = start;
    w.latencies.clear();
    w.sheds = 0;
    w.max_latency = 0;
    w.exemplar_trace_id = 0;
    w.shed_exemplar_trace_id = 0;
  }
  return ingest;
}

SloIngest SloMonitor::on_complete(std::size_t class_id,
                                  std::uint64_t finish_cycle,
                                  std::uint64_t latency_cycles,
                                  std::uint64_t trace_id) {
  SloIngest ingest = roll(class_id, finish_cycle);
  OpenWindow& w = open_[class_id];
  w.latencies.push_back(static_cast<double>(latency_cycles));
  if (w.exemplar_trace_id == 0 || latency_cycles > w.max_latency) {
    w.max_latency = latency_cycles;
    w.exemplar_trace_id = trace_id;
    ingest.window_max = true;
  }
  return ingest;
}

SloIngest SloMonitor::on_shed(std::size_t class_id, std::uint64_t cycle,
                              std::uint64_t trace_id) {
  SloIngest ingest = roll(class_id, cycle);
  OpenWindow& w = open_[class_id];
  ++w.sheds;
  if (w.shed_exemplar_trace_id == 0) w.shed_exemplar_trace_id = trace_id;
  return ingest;
}

void SloMonitor::close_window(std::size_t class_id, SloIngest* ingest) {
  OpenWindow& w = open_[class_id];
  if (!w.active) return;

  SloWindow out;
  out.class_id = class_id;
  out.window_start = w.start;
  out.completions = w.latencies.size();
  out.sheds = w.sheds;
  out.max_latency_cycles = w.max_latency;
  out.exemplar_trace_id = w.exemplar_trace_id;
  out.shed_exemplar_trace_id = w.shed_exemplar_trace_id;
  if (!w.latencies.empty()) {
    const TailPercentiles tp = tail_percentiles(w.latencies);
    out.p99_cycles = tp.p99;
    out.p999_cycles = tp.p999;
  }
  const std::uint64_t offered = out.completions + out.sheds;
  out.goodput_fraction =
      offered > 0 ? static_cast<double>(out.completions) /
                        static_cast<double>(offered)
                  : 1.0;

  if (policy_.p99_budget_cycles > 0.0 && out.completions > 0 &&
      out.p99_cycles > policy_.p99_budget_cycles) {
    out.breach_mask |= kBreachP99;
  }
  if (policy_.p999_budget_cycles > 0.0 && out.completions > 0 &&
      out.p999_cycles > policy_.p999_budget_cycles) {
    out.breach_mask |= kBreachP999;
  }
  if (policy_.min_goodput_fraction > 0.0 &&
      out.goodput_fraction < policy_.min_goodput_fraction) {
    out.breach_mask |= kBreachGoodput;
  }

  // Burn rates over the lookback including this window, oldest dropped at
  // the longest horizon.
  std::vector<WindowLoad>& recent = recent_[class_id];
  recent.push_back({out.completions, out.sheds});
  const std::uint64_t max_horizon = kBurnHorizonWindows[kBurnHorizons - 1];
  if (recent.size() > max_horizon) recent.erase(recent.begin());
  for (std::size_t h = 0; h < kBurnHorizons; ++h) {
    const std::size_t span = std::min<std::size_t>(
        recent.size(), static_cast<std::size_t>(kBurnHorizonWindows[h]));
    std::uint64_t bad = 0;
    std::uint64_t total = 0;
    for (std::size_t i = recent.size() - span; i < recent.size(); ++i) {
      bad += recent[i].sheds;
      total += recent[i].completions + recent[i].sheds;
    }
    const double fraction =
        total > 0 ? static_cast<double>(bad) / static_cast<double>(total)
                  : 0.0;
    out.burn[h] = fraction / policy_.error_budget;
    max_burn_[h] = std::max(max_burn_[h], out.burn[h]);
  }

  windows_.push_back(out);
  w.active = false;
  if (ingest != nullptr) {
    ingest->closed_window = true;
    ingest->closed_breached = out.breach_mask != 0;
  }
}

void SloMonitor::finish() {
  for (std::size_t c = 0; c < open_.size(); ++c) {
    close_window(c, nullptr);
  }
}

std::uint64_t SloMonitor::windows_breached() const noexcept {
  std::uint64_t n = 0;
  for (const SloWindow& w : windows_) {
    if (w.breach_mask != 0) ++n;
  }
  return n;
}

double SloMonitor::max_burn(std::size_t horizon) const {
  NOCW_CHECK(horizon < kBurnHorizons);
  return max_burn_[horizon];
}

void SloMonitor::publish(const std::string& prefix, Registry& reg) const {
  reg.set_counter(prefix + ".windows_total", "count", windows_.size());
  reg.set_counter(prefix + ".windows_breached", "count", windows_breached());
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t goodput = 0;
  for (const SloWindow& w : windows_) {
    if ((w.breach_mask & kBreachP99) != 0) ++p99;
    if ((w.breach_mask & kBreachP999) != 0) ++p999;
    if ((w.breach_mask & kBreachGoodput) != 0) ++goodput;
  }
  reg.set_counter(prefix + ".breach_p99_windows", "count", p99);
  reg.set_counter(prefix + ".breach_p999_windows", "count", p999);
  reg.set_counter(prefix + ".breach_goodput_windows", "count", goodput);
  for (std::size_t h = 0; h < kBurnHorizons; ++h) {
    reg.set_gauge(prefix + ".max_burn_" +
                      std::to_string(kBurnHorizonWindows[h]) + "w",
                  "ratio", max_burn_[h]);
  }
}

std::string SloMonitor::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"nocw.slo.v1\",\"window_cycles\":"
     << policy_.window_cycles
     << ",\"error_budget\":" << json_number(policy_.error_budget)
     << ",\"p99_budget_cycles\":" << json_number(policy_.p99_budget_cycles)
     << ",\"p999_budget_cycles\":" << json_number(policy_.p999_budget_cycles)
     << ",\"min_goodput_fraction\":"
     << json_number(policy_.min_goodput_fraction) << ",\"windows\":[\n";
  bool first = true;
  for (const SloWindow& w : windows_) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"class_id\":" << w.class_id
       << ",\"window_start\":" << w.window_start
       << ",\"completions\":" << w.completions << ",\"sheds\":" << w.sheds
       << ",\"p99_cycles\":" << json_number(w.p99_cycles)
       << ",\"p999_cycles\":" << json_number(w.p999_cycles)
       << ",\"max_latency_cycles\":" << w.max_latency_cycles
       << ",\"goodput_fraction\":" << json_number(w.goodput_fraction)
       << ",\"breach_mask\":" << w.breach_mask;
    for (std::size_t h = 0; h < kBurnHorizons; ++h) {
      os << ",\"burn_" << kBurnHorizonWindows[h]
         << "w\":" << json_number(w.burn[h]);
    }
    os << ",\"exemplar\":\"" << hex_id(w.exemplar_trace_id)
       << "\",\"shed_exemplar\":\"" << hex_id(w.shed_exemplar_trace_id)
       << "\"}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace nocw::obs
