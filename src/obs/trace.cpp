#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

#include "obs/trace_context.hpp"
#include "util/env.hpp"

namespace nocw::obs {

namespace {

struct Flags {
  std::atomic<bool> enabled;
  std::atomic<std::uint32_t> categories;
  std::atomic<std::uint32_t> sample_every;
  std::atomic<std::size_t> capacity;
};

Flags& flags() {
  // Leaked singleton: atomics are not movable and the flags must outlive
  // every tracing call site, including static destructors.
  static Flags* f = [] {
    auto* init = new Flags;
    init->enabled.store(env_int("NOCW_TRACE", 0) != 0,
                        std::memory_order_relaxed);
    init->categories.store(
        parse_categories(env_string("NOCW_TRACE_CATEGORIES", "all")),
        std::memory_order_relaxed);
    init->sample_every.store(
        static_cast<std::uint32_t>(env_int("NOCW_TRACE_SAMPLE", 1, 1)),
        std::memory_order_relaxed);
    init->capacity.store(
        static_cast<std::size_t>(
            env_int("NOCW_TRACE_BUF", std::int64_t{1} << 16, 16)),
        std::memory_order_relaxed);
    return init;
  }();
  return *f;
}

struct CategoryName {
  const char* name;
  std::uint32_t bit;
};

constexpr CategoryName kCategoryNames[] = {
    {"noc", kCatNoc},       {"mac", kCatMac},   {"decomp", kCatDecomp},
    {"layer", kCatLayer},   {"mem", kCatMem},   {"eval", kCatEval},
    {"serve", kCatServe},
};

thread_local std::uint64_t tl_time_base = 0;

}  // namespace

std::uint32_t parse_categories(const std::string& csv) noexcept {
  if (csv.empty() || csv == "all") return kCatAll;
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string token = csv.substr(start, end - start);
    if (token == "all") return kCatAll;
    for (const auto& [name, bit] : kCategoryNames) {
      if (token == name) mask |= bit;
    }
    start = end + 1;
  }
  return mask;
}

bool Tracer::enabled() noexcept {
  return flags().enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool on) noexcept {
  flags().enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::category_on(std::uint32_t cat) noexcept {
  return (flags().categories.load(std::memory_order_relaxed) & cat) != 0;
}

void Tracer::set_categories(std::uint32_t mask) noexcept {
  flags().categories.store(mask, std::memory_order_relaxed);
}

std::uint32_t Tracer::sample_every() noexcept {
  return std::max(1u, flags().sample_every.load(std::memory_order_relaxed));
}

void Tracer::set_sample_every(std::uint32_t n) noexcept {
  flags().sample_every.store(std::max(1u, n), std::memory_order_relaxed);
}

std::size_t Tracer::buffer_capacity() noexcept {
  return flags().capacity.load(std::memory_order_relaxed);
}

void Tracer::set_buffer_capacity(std::size_t cap) noexcept {
  flags().capacity.store(std::max<std::size_t>(1, cap),
                         std::memory_order_relaxed);
}

void stamp(TraceEvent& ev, const TraceContext& ctx) noexcept {
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.parent_span_id = ctx.parent_span_id;
}

void stamp(TraceEvent& ev, std::uint64_t trace_id, std::uint64_t span_id,
           std::uint64_t parent_span_id) noexcept {
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.parent_span_id = parent_span_id;
}

Tracer::Buffer& Tracer::local_buffer() {
  // One buffer per (tracer, thread). The raw pointer is safe because the
  // tracer is a process-lifetime singleton and buffers are never removed.
  thread_local Buffer* cached = nullptr;
  thread_local const Tracer* cached_owner = nullptr;
  if (cached && cached_owner == this) return *cached;
  const std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  buffers_.back()->ring.reserve(buffer_capacity());
  cached = buffers_.back().get();
  cached_owner = this;
  return *cached;
}

void Tracer::record(TraceEvent ev) {
  ev.ts += tl_time_base;
  if (ev.trace_id == 0) {
    const TraceContext& ctx = trace_context();
    if (ctx.valid()) stamp(ev, ctx);
  }
  Buffer& buf = local_buffer();
  ++buf.total;
  if (buf.ring.size() < buffer_capacity()) {
    buf.ring.push_back(std::move(ev));
    return;
  }
  // Ring is full: overwrite the oldest event, keep the most recent window.
  buf.ring[buf.next] = std::move(ev);
  buf.next = (buf.next + 1) % buf.ring.size();
}

void Tracer::record_instant(std::uint32_t cat, std::string name,
                            std::uint32_t pid, std::uint32_t tid,
                            std::uint64_t ts, const char* arg_name,
                            double arg) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 'i';
  ev.cat = cat;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.arg_name = arg_name;
  ev.arg = arg;
  record(std::move(ev));
}

void Tracer::record_span(std::uint32_t cat, std::string name,
                         std::uint32_t pid, std::uint32_t tid,
                         std::uint64_t ts, std::uint64_t dur,
                         const char* arg_name, double arg) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 'X';
  ev.cat = cat;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.dur = dur;
  ev.arg_name = arg_name;
  ev.arg = arg;
  record(std::move(ev));
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      // Oldest-first within the buffer: [next, end) then [0, next).
      for (std::size_t i = buf->next; i < buf->ring.size(); ++i) {
        out.push_back(buf->ring[i]);
      }
      for (std::size_t i = 0; i < buf->next; ++i) {
        out.push_back(buf->ring[i]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) n += buf->ring.size();
  return n;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) n += buf->total - buf->ring.size();
  return n;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    buf->ring.clear();
    buf->next = 0;
    buf->total = 0;
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t time_base() noexcept { return tl_time_base; }

ScopedTimeBase::ScopedTimeBase(std::uint64_t base) noexcept
    : prev_(tl_time_base) {
  tl_time_base = base;
}

ScopedTimeBase::~ScopedTimeBase() { tl_time_base = prev_; }

}  // namespace nocw::obs
