#include "obs/jsonfmt.hpp"

#include <cmath>
#include <cstdio>

namespace nocw::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[48];
  // Integral values print as plain integers (40, not 4e+01): %g's shortest
  // round-trip form is sometimes scientific, which is noise in dashboards.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    for (int prec = 1; prec <= 16; ++prec) {
      char shorter[48];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace nocw::obs
