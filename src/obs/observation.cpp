#include "obs/observation.hpp"

#include "util/check.hpp"

namespace nocw::obs {

void NocObservation::merge(const NocObservation& o) {
  if (!o.collected) return;
  if (!collected) {
    *this = o;
    return;
  }
  NOCW_CHECK_EQ(link_flits.size(), o.link_flits.size());
  NOCW_CHECK_EQ(node_ejections.size(), o.node_ejections.size());
  for (std::size_t i = 0; i < link_flits.size(); ++i) {
    link_flits[i] += o.link_flits[i];
  }
  for (std::size_t i = 0; i < node_ejections.size(); ++i) {
    node_ejections[i] += o.node_ejections[i];
  }
  packet_latency_cycles.insert(packet_latency_cycles.end(),
                               o.packet_latency_cycles.begin(),
                               o.packet_latency_cycles.end());
  queue_depth_flits.insert(queue_depth_flits.end(),
                           o.queue_depth_flits.begin(),
                           o.queue_depth_flits.end());
  window_cycles += o.window_cycles;
}

}  // namespace nocw::obs
