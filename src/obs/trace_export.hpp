// Chrome-trace / Perfetto JSON export of the tracer's event stream.
//
// The output is the Trace Event Format's "JSON object" flavour: a
// `traceEvents` array of one-line event objects plus `process_name`
// metadata, loadable directly in ui.perfetto.dev or chrome://tracing.
// Timestamps are simulated cycles exported 1:1 as microseconds (`ts`), so
// the Perfetto ruler reads "1 us" per cycle. Events are emitted one per
// line, sorted by (pid, tid, ts), which keeps the file diffable and lets the
// schema-validation test parse it line-wise without a JSON library.
#pragma once

#include <span>
#include <string>

#include "obs/trace.hpp"

namespace nocw::obs {

/// Serialize `events` (pre-sorted or not; they are exported in the given
/// order) plus process/thread metadata to Chrome-trace JSON.
[[nodiscard]] std::string to_chrome_json(std::span<const TraceEvent> events);

/// Collect the global tracer's events and write them to `path`.
/// Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace nocw::obs
