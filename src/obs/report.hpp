// Derived observability reports: utilization heatmaps, per-layer phase
// breakdowns, latency/queue-depth percentile summaries.
//
// These turn raw observations (obs/observation.hpp) and simulation results
// into the same util/table console/CSV surface every bench already uses, so
// "where do the cycles go when δ changes" and "which links saturate during
// the weight broadcast" are one function call away from any driver.
#pragma once

#include <span>
#include <string_view>

#include "accel/simulator.hpp"
#include "noc/config.hpp"
#include "obs/observation.hpp"
#include "obs/registry.hpp"
#include "util/table.hpp"

namespace nocw::obs {

/// width x height grid of per-node ejection utilization (flits ejected per
/// observed cycle), annotated MI/PE. Row 0 is mesh row y=0.
[[nodiscard]] Table pe_utilization_heatmap(const noc::NocConfig& cfg,
                                           const NocObservation& obs);

/// One row per active inter-router link (router, direction): flits carried
/// and utilization (flits per observed cycle), busiest first.
[[nodiscard]] Table link_utilization_table(const noc::NocConfig& cfg,
                                           const NocObservation& obs);

/// One row per traffic-bearing layer: memory/NoC/compute cycles and each
/// phase's share of the stacked layer latency.
[[nodiscard]] Table layer_phase_table(const accel::InferenceResult& result);

/// One-row percentile summary (count, mean, p50, p95, p99, max) of a sample
/// set; `label` names the quantity and `unit` its unit. Empty samples yield
/// a count-0 row with "-" cells rather than NaNs.
[[nodiscard]] Table percentile_table(std::string_view label,
                                     std::span<const double> samples,
                                     std::string_view unit);

/// Register an inference's headline numbers and NoC observation percentiles
/// under "<prefix>.*".
void snapshot_inference(Registry& reg, const accel::InferenceResult& result,
                        std::string_view prefix = "accel");

/// Register a model summary's volumes under "<prefix>.*".
void snapshot_model_summary(Registry& reg, const accel::ModelSummary& summary,
                            std::string_view prefix = "model");

}  // namespace nocw::obs
