#include "obs/report.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "noc/flit.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace nocw::obs {

namespace {

const char* port_name(int port) noexcept {
  switch (port) {
    case noc::kNorth: return "N";
    case noc::kEast: return "E";
    case noc::kSouth: return "S";
    case noc::kWest: return "W";
    default: return "L";
  }
}

double utilization(std::uint64_t events, std::uint64_t cycles) noexcept {
  return cycles ? static_cast<double>(events) / static_cast<double>(cycles)
                : 0.0;
}

}  // namespace

Table pe_utilization_heatmap(const noc::NocConfig& cfg,
                             const NocObservation& obs) {
  std::vector<std::string> headers{"row"};
  for (int x = 0; x < cfg.width; ++x) {
    headers.push_back("x=" + std::to_string(x));
  }
  Table t(std::move(headers));
  if (!obs.collected) return t;
  NOCW_CHECK_EQ(obs.node_ejections.size(),
                static_cast<std::size_t>(cfg.node_count()));
  for (int y = 0; y < cfg.height; ++y) {
    std::vector<std::string> row{"y=" + std::to_string(y)};
    for (int x = 0; x < cfg.width; ++x) {
      const int id = cfg.node_id(x, y);
      const double u = utilization(
          obs.node_ejections[static_cast<std::size_t>(id)],
          obs.window_cycles);
      row.push_back(std::string(cfg.is_memory_interface(id) ? "MI " : "PE ") +
                    fmt_pct(u, 1));
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table link_utilization_table(const noc::NocConfig& cfg,
                             const NocObservation& obs) {
  Table t({"link", "flits", "utilization"});
  if (!obs.collected) return t;
  NOCW_CHECK_EQ(obs.link_flits.size(),
                static_cast<std::size_t>(cfg.node_count()) * noc::kNumPorts);
  struct Link {
    int node;
    int port;
    std::uint64_t flits;
  };
  std::vector<Link> links;
  for (int node = 0; node < cfg.node_count(); ++node) {
    for (int port = 1; port < noc::kNumPorts; ++port) {  // skip local
      const std::uint64_t flits =
          obs.link_flits[static_cast<std::size_t>(node) * noc::kNumPorts +
                         static_cast<std::size_t>(port)];
      if (flits > 0) links.push_back({node, port, flits});
    }
  }
  std::stable_sort(links.begin(), links.end(),
                   [](const Link& a, const Link& b) {
                     return a.flits > b.flits;  // busiest first
                   });
  for (const Link& l : links) {
    t.add_row({"(" + std::to_string(cfg.node_x(l.node)) + "," +
                   std::to_string(cfg.node_y(l.node)) + ")->" +
                   port_name(l.port),
               std::to_string(l.flits),
               fmt_pct(utilization(l.flits, obs.window_cycles), 1)});
  }
  return t;
}

Table layer_phase_table(const accel::InferenceResult& result) {
  Table t({"layer", "memory", "noc", "compute", "total", "mem%", "noc%",
           "comp%"});
  for (const accel::LayerResult& lr : result.layers) {
    const double total = lr.latency.total().value();
    const auto pct = [total](units::FracCycles v) {
      return total > 0.0 ? fmt_pct(v.value() / total, 1) : std::string("-");
    };
    t.add_row({lr.name, fmt_fixed(lr.latency.memory_cycles.value(), 0),
               fmt_fixed(lr.latency.comm_cycles.value(), 0),
               fmt_fixed(lr.latency.compute_cycles.value(), 0),
               fmt_fixed(total, 0), pct(lr.latency.memory_cycles),
               pct(lr.latency.comm_cycles), pct(lr.latency.compute_cycles)});
  }
  const double total = result.latency.total().value();
  const auto pct = [total](units::FracCycles v) {
    return total > 0.0 ? fmt_pct(v.value() / total, 1) : std::string("-");
  };
  t.add_row({"(total)", fmt_fixed(result.latency.memory_cycles.value(), 0),
             fmt_fixed(result.latency.comm_cycles.value(), 0),
             fmt_fixed(result.latency.compute_cycles.value(), 0),
             fmt_fixed(total, 0), pct(result.latency.memory_cycles),
             pct(result.latency.comm_cycles),
             pct(result.latency.compute_cycles)});
  return t;
}

Table percentile_table(std::string_view label,
                       std::span<const double> samples,
                       std::string_view unit) {
  Table t({"metric", "unit", "count", "mean", "p50", "p95", "p99", "max"});
  if (samples.empty()) {
    t.add_row({std::string(label), std::string(unit), "0", "-", "-", "-", "-",
               "-"});
    return t;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (const double v : sorted) rs.add(v);
  t.add_row({std::string(label), std::string(unit),
             std::to_string(sorted.size()), fmt_fixed(rs.mean(), 2),
             fmt_fixed(percentile_sorted(sorted, 50.0), 2),
             fmt_fixed(percentile_sorted(sorted, 95.0), 2),
             fmt_fixed(percentile_sorted(sorted, 99.0), 2),
             fmt_fixed(rs.max(), 2)});
  return t;
}

void snapshot_inference(Registry& reg, const accel::InferenceResult& result,
                        std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  // Typed publishes: the unit labels come from the quantities' dimension
  // tags (FracCycles -> "cycles", Joules -> "joules") at compile time.
  reg.set_gauge(base + "latency_memory", result.latency.memory_cycles);
  reg.set_gauge(base + "latency_noc", result.latency.comm_cycles);
  reg.set_gauge(base + "latency_compute", result.latency.compute_cycles);
  reg.set_gauge(base + "latency_total", result.latency.total());
  reg.set_gauge(base + "energy_total", result.energy.total());
  reg.set_gauge(base + "energy_communication",
                result.energy.communication.total());
  reg.set_gauge(base + "energy_computation",
                result.energy.computation.total());
  reg.set_gauge(base + "energy_local_memory",
                result.energy.local_memory.total());
  reg.set_gauge(base + "energy_main_memory",
                result.energy.main_memory.total());
  reg.set_counter(base + "layers", "count", result.layers.size());
  for (const double v : result.noc_obs.packet_latency_cycles) {
    reg.observe(base + "packet_latency", "cycles", v);
  }
  for (const double v : result.noc_obs.queue_depth_flits) {
    reg.observe(base + "queue_depth", "flits", v);
  }
}

void snapshot_model_summary(Registry& reg,
                            const accel::ModelSummary& summary,
                            std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  reg.set_counter(base + "layers", "count", summary.layers.size());
  reg.set_counter(base + "macro_layers", "count",
                  summary.macro_layers().size());
  reg.set_counter(base + "total_params", "count", summary.total_params);
  reg.set_counter(base + "total_macs", "count", summary.total_macs);
}

}  // namespace nocw::obs
