// Time-series telemetry: periodic cycle-window snapshots of simulator
// activity, the longitudinal half of the observability stack.
//
// The registry (obs/registry) answers "what were the totals of this run";
// a TimeSeries answers "how did the run get there": DRAM reads, link flits,
// queue depth and MAC/decompress activity sampled every N simulated cycles,
// so the paper's phase-resolved breakdowns (Fig. 2, Fig. 10) can be seen
// *over time* rather than only as end-of-run sums. Producers are the NoC
// cycle engine (noc::Network::set_series_sink) and the accelerator simulator
// (AccelConfig::series); both stamp points on the inference-global timeline
// (obs::time_base() + local cycle), so a whole multi-layer inference lands
// on one x-axis.
//
// Memory is bounded without losing the shape: each series holds at most
// `capacity` points, and when a append would overflow, the series *compacts*
// — every second point is dropped and the effective sampling stride doubles.
// A 10^9-cycle run therefore costs the same memory as a 10^4-cycle one, at
// proportionally coarser (but uniformly spaced) resolution; first and most
// recent points are always retained. Sampling never feeds back into
// simulation state: with no sink installed (the default) the engines take
// one pointer-null branch and results are bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace nocw::obs {

/// One sampled point: value observed at (the end of) `cycle`.
struct SeriesPoint {
  std::uint64_t cycle = 0;
  double value = 0.0;
};

/// One bounded, ring-compacted series of (cycle, value) samples. Units come
/// from the registry's closed vocabulary (unit_allowed); an unknown unit
/// throws at series creation, same contract as Registry metrics.
class TimeSeries {
 public:
  TimeSeries(std::string name, std::string unit, std::size_t capacity);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

  /// Append one sample. Cycles must be non-decreasing (the producers sample
  /// a monotone clock); violating that throws nocw::CheckError. When the
  /// series is full it first compacts: points at odd indices are dropped,
  /// halving the size and doubling `compaction_stride`.
  void append(std::uint64_t cycle, double value);

  [[nodiscard]] const std::vector<SeriesPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// 2^k where k is the number of compactions performed; the effective
  /// sampling interval is the producer's interval times this stride.
  [[nodiscard]] std::uint64_t compaction_stride() const noexcept {
    return stride_;
  }

 private:
  std::string name_;
  std::string unit_;
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::vector<SeriesPoint> points_;
};

/// A named set of time series, the sink the simulators write into and the
/// exporters read from. Thread-safe for concurrent producers (δ-sweep lanes
/// each simulate their own network); series creation and appends share one
/// mutex, cheap next to the thousands of simulated cycles per sample.
class TimeSeriesSet {
 public:
  /// Default per-series point budget (overridable per set).
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TimeSeriesSet(std::size_t capacity = kDefaultCapacity);

  /// Append to the named series, creating it on first use. Re-using a name
  /// with a different unit throws nocw::CheckError (one name, one meaning —
  /// the registry's rule).
  void append(std::string_view name, std::string_view unit,
              std::uint64_t cycle, double value);

  /// Typed append: the unit label comes from the quantity's dimension tag
  /// at compile time (same contract as Registry's typed overloads);
  /// dimensions with no registry unit are rejected at compile time.
  template <class Dim, class Rep>
  void append(std::string_view name, std::uint64_t cycle,
              units::Quantity<Dim, Rep> v) {
    static_assert(!Dim::registry_unit.empty(),
                  "this dimension has no registry unit: convert it "
                  "(to_joules / to_watts) before publishing");
    append(name, Dim::registry_unit, cycle, v.dvalue());
  }

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Snapshot of one series' points. Throws nocw::CheckError when absent.
  [[nodiscard]] TimeSeries series(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// {"schema":"nocw.timeseries.v1","series":[...]} — one series per line
  /// with name/unit/stride and a [[cycle,value],...] point array, sorted by
  /// name. Line-wise machine-checkable (tests/obs/manifest_schema_test).
  [[nodiscard]] std::string to_json() const;
  /// series,unit,cycle,value rows, one per point, sorted by name.
  [[nodiscard]] std::string to_csv() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::string, TimeSeries, std::less<>> series_;
};

/// Producer-side sampling interval in simulated cycles (NOCW_TS_INTERVAL,
/// default 256, minimum 1). Read once; benches may override via env before
/// the first simulator runs.
[[nodiscard]] std::uint64_t series_interval_cycles();

/// Per-series point budget (NOCW_TS_CAP, default TimeSeriesSet's 512,
/// minimum 4).
[[nodiscard]] std::size_t series_capacity();

}  // namespace nocw::obs
