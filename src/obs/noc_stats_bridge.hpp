// The audited bridge between noc::NocStats (hot-path counter struct) and
// obs::Registry (named/typed export layer).
//
// Every uint64 field of NocStats appears exactly once in the static table
// below, with its registry name and unit. Two tripwires keep the table and
// the struct from silently diverging:
//
//   * a static_assert in noc_stats_bridge.cpp recomputes sizeof(NocStats)
//     from the table length, so adding or removing a field without updating
//     the table fails to *compile*;
//   * tests/obs/registry_test.cpp round-trips a NocStats with every field
//     set to a distinct value through snapshot_noc_stats() and reads each
//     one back by name, and checks that NocStats::reset() zeroes every
//     bridged counter.
//
// NocStats itself stays the facade the cycle engine writes; nothing here
// runs on a simulation hot path.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "noc/stats.hpp"
#include "obs/registry.hpp"

namespace nocw::obs {

/// One bridged field: registry name (prefix applied by snapshot_noc_stats),
/// unit from the registry vocabulary, and an accessor returning the raw
/// counter value. An accessor (not a member pointer) because the counters
/// are a mix of strong unit types (units::Cycles, units::Flits) and plain
/// uint64 event counts; the bridge exports the underlying representation
/// either way.
struct NocStatsField {
  const char* name;
  const char* unit;
  std::uint64_t (*get)(const noc::NocStats&);
};

/// The full audit table, one entry per uint64 counter in NocStats.
[[nodiscard]] std::span<const NocStatsField> noc_stats_fields() noexcept;

/// Register every NocStats counter as "<prefix>.<field>" plus the
/// packet-latency summary gauges ("<prefix>.packet_latency_*").
void snapshot_noc_stats(Registry& reg, const noc::NocStats& stats,
                        std::string_view prefix = "noc");

}  // namespace nocw::obs
