// Streaming SLO monitor: per-class tumbling-window evaluation of the
// serving layer's latency and goodput objectives, with burn rates and
// exemplar trace links.
//
// The serving sweep (eval/serving) reports whole-run percentiles; an SLO is
// a statement about every *window* of the run — "p99 under budget in each
// 1M-cycle window", not "p99 under budget on average". The monitor
// consumes the serving driver's completion/shed stream in event order,
// cuts each class's timeline into tumbling windows aligned to
// slo_window_start(), and at each window close evaluates three budgets
// (p99, p99.9, goodput fraction) plus a multi-horizon burn rate: the shed
// fraction over the last {1, 4, 16} closed windows divided by the error
// budget, the standard fast/slow-burn alerting pair. A burn of 1.0 means
// sheds are consuming the budget exactly as fast as allowed.
//
// Windows materialize only where events land (event-time, not wall-clock:
// a quiet class produces no empty windows), and every window remembers the
// trace id of its max-latency completion and of its first shed — the
// exemplar links that let a breached window be opened as a Perfetto span
// tree (serve/reqtrace). The ingest return value (SloIngest) tells the
// trace sink which requests to pin so exactly those exemplars survive
// tail-based sampling.
//
// Determinism: the monitor is driven from the serial ServeSim event loop,
// holds no clocks or RNG, and its windows/burns are pure functions of the
// (class, cycle, latency, trace id) stream — bit-identical across
// NOCW_THREADS. Window math (slo_window_start) is confined to obs/slo by
// tools/lint.py's [slo] rule so no second, subtly different window
// alignment can appear elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nocw::obs {

class Registry;

/// Start cycle of the tumbling window containing `cycle`. The only window
/// alignment primitive in the tree ([slo] lint rule).
[[nodiscard]] std::uint64_t slo_window_start(std::uint64_t cycle,
                                             std::uint64_t window) noexcept;

/// Per-class service-level objective. Budgets <= 0 are not enforced.
struct SloPolicy {
  std::uint64_t window_cycles = 1'000'000;
  double p99_budget_cycles = 0.0;     ///< breach when window p99 exceeds
  double p999_budget_cycles = 0.0;    ///< breach when window p99.9 exceeds
  double min_goodput_fraction = 0.0;  ///< breach when completed/offered below
  /// Allowed shed fraction; burn rate = shed fraction / error_budget.
  double error_budget = 0.01;
};

/// Breach reasons, OR-ed into SloWindow::breach_mask.
inline constexpr std::uint32_t kBreachP99 = 1u << 0;
inline constexpr std::uint32_t kBreachP999 = 1u << 1;
inline constexpr std::uint32_t kBreachGoodput = 1u << 2;

/// Burn-rate horizons in closed windows: fast (1), medium (4), slow (16).
inline constexpr std::size_t kBurnHorizons = 3;
inline constexpr std::uint64_t kBurnHorizonWindows[kBurnHorizons] = {1, 4, 16};

/// One closed window's verdict. Latencies in cycles; exemplar ids are
/// request trace ids (0 = no such event in the window).
struct SloWindow {
  std::size_t class_id = 0;
  std::uint64_t window_start = 0;
  std::uint64_t completions = 0;
  std::uint64_t sheds = 0;
  double p99_cycles = 0.0;   ///< 0 when the window had no completions
  double p999_cycles = 0.0;
  std::uint64_t max_latency_cycles = 0;
  double goodput_fraction = 1.0;  ///< completions / (completions + sheds)
  std::uint32_t breach_mask = 0;
  /// Shed fraction over the last {1,4,16} closed windows of this class
  /// (fewer early in the run), divided by the error budget.
  double burn[kBurnHorizons] = {0.0, 0.0, 0.0};
  std::uint64_t exemplar_trace_id = 0;       ///< max-latency completion
  std::uint64_t shed_exemplar_trace_id = 0;  ///< first shed in the window
};

/// What one ingested event meant for the window machinery — the protocol
/// that lets the trace sink (serve/reqtrace) pin exemplar span trees
/// without duplicating any window math here.
struct SloIngest {
  /// This completion is its window's max-latency so far: the sink should
  /// replace its pending exemplar for the class with this request.
  bool window_max = false;
  /// Ingesting this event closed the class's previous window.
  bool closed_window = false;
  /// ...and that closed window breached: the sink must promote the
  /// pending exemplar it was holding for the class.
  bool closed_breached = false;
};

/// Streaming evaluator. Feed completions and sheds in non-decreasing cycle
/// order per class (the serial serving loop's natural order), then call
/// finish() to close the final windows before reading results.
class SloMonitor {
 public:
  SloMonitor(std::size_t num_classes, const SloPolicy& policy);

  /// A request of `class_id` finished at `finish_cycle` after
  /// `latency_cycles` (arrival to completion). `trace_id` may be 0.
  SloIngest on_complete(std::size_t class_id, std::uint64_t finish_cycle,
                        std::uint64_t latency_cycles, std::uint64_t trace_id);
  /// A request was shed at `cycle`.
  SloIngest on_shed(std::size_t class_id, std::uint64_t cycle,
                    std::uint64_t trace_id);
  /// Close every class's open window. Idempotent; call before reading.
  void finish();

  /// Closed windows in close order (deterministic: the event stream's
  /// order, then class id for the finish() flush).
  [[nodiscard]] const std::vector<SloWindow>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const SloPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t windows_breached() const noexcept;
  /// Max burn rate seen at any window close for the given horizon index.
  [[nodiscard]] double max_burn(std::size_t horizon) const;

  /// Registry publication under `prefix.`: windows total/breached counters,
  /// max burn gauges per horizon, per-reason breach counters.
  void publish(const std::string& prefix, Registry& reg) const;
  /// {"schema":"nocw.slo.v1",...} with one window object per line —
  /// the input for tools/obs_dashboard.py's SLO burn-rate panel.
  [[nodiscard]] std::string to_json() const;

 private:
  struct OpenWindow {
    bool active = false;
    std::uint64_t start = 0;
    std::vector<double> latencies;
    std::uint64_t sheds = 0;
    std::uint64_t max_latency = 0;
    std::uint64_t exemplar_trace_id = 0;
    std::uint64_t shed_exemplar_trace_id = 0;
  };
  struct WindowLoad {
    std::uint64_t completions = 0;
    std::uint64_t sheds = 0;
  };

  /// Roll the class's window forward to the one containing `cycle`,
  /// closing the previous window if `cycle` left it.
  SloIngest roll(std::size_t class_id, std::uint64_t cycle);
  void close_window(std::size_t class_id, SloIngest* ingest);

  SloPolicy policy_;
  std::vector<OpenWindow> open_;
  /// Per class: (completions, sheds) of up to the last 16 closed windows,
  /// oldest first — the burn-rate lookback.
  std::vector<std::vector<WindowLoad>> recent_;
  std::vector<SloWindow> windows_;
  double max_burn_[kBurnHorizons] = {0.0, 0.0, 0.0};
};

}  // namespace nocw::obs
