// Request-scoped causal trace context: deterministic trace/span ids.
//
// A TraceContext names one node of a request's span tree: the trace id
// (shared by every span of one request), the span id of the current node,
// and the span id of its parent. Ids are *derived*, never drawn from a
// clock or an RNG: the serving layer mints the root pair from its
// counter-based arrival hash (serve/trace_ids.hpp — the only sanctioned
// mint, enforced by tools/lint.py's [trace-ctx] rule), and every child id
// is a pure function of (parent span id, child slot) via derive_child().
// Two runs of the same workload therefore produce bit-identical id trees
// at any NOCW_THREADS, and a span id seen in a Perfetto export can be
// matched against the nocw.reqtrace.v1 JSON without any join table.
//
// Propagation mirrors ScopedTimeBase: a thread-local current context that
// Tracer::record() stamps onto every event whose own context is unset.
// The serving driver pushes the request/batch context around its replay of
// the accelerator simulation, so the accel/noc phase spans (emitted on the
// calling thread) land attributed to the owning request. Worker-pool
// threads never inherit the context — their per-hop instants stay
// unattributed (trace_id 0), which is the honest statement that a single
// router cycle serves many requests at once.
#pragma once

#include <cstdint>

namespace nocw::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no request attribution
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// Child context under `parent`: same trace id, parent's span id as the
/// parent link, and a span id that is a pure hash of (parent span id,
/// slot). Slots number the children of one parent (layer index, phase
/// ordinal), so the whole id tree is reproducible from the root alone.
/// The derived span id is never zero.
[[nodiscard]] TraceContext derive_child(const TraceContext& parent,
                                        std::uint64_t slot) noexcept;

/// The calling thread's current context (invalid by default).
[[nodiscard]] const TraceContext& trace_context() noexcept;

/// RAII override of the thread-local context (absolute, like
/// ScopedTimeBase: the previous context is restored on destruction).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace nocw::obs
