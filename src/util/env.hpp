// Environment-variable knobs shared by benches and examples.
//
// Reproduction benches scale their probe sets with REPRO_SCALE / REPRO_PROBES
// so the full suite finishes on a laptop core; these helpers centralize the
// parsing and defaulting.
#pragma once

#include <cstdint>
#include <string>

namespace nocw {

/// Read an integer env var, returning `fallback` when unset or malformed.
/// A set-but-malformed value (e.g. NOCW_THREADS=abc) falls back with a
/// one-time warning on stderr — a typo'd knob silently reverting to the
/// default is how a "parallel" benchmark runs serial for weeks. An unset
/// variable is silent: that is the normal case.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// As above, but values below `min_value` (e.g. a negative thread count)
/// also fall back with the one-time warning.
std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value);

/// Read a double env var, returning `fallback` when unset or malformed; a
/// set-but-malformed or non-finite value warns once on stderr.
double env_double(const char* name, double fallback);

/// As above, but values below `min_value` also fall back with the warning.
double env_double(const char* name, double fallback, double min_value);

/// Read a string env var, returning `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace nocw
