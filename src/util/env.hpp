// Environment-variable knobs shared by benches and examples.
//
// Reproduction benches scale their probe sets with REPRO_SCALE / REPRO_PROBES
// so the full suite finishes on a laptop core; these helpers centralize the
// parsing and defaulting.
#pragma once

#include <cstdint>
#include <string>

namespace nocw {

/// Read an integer env var, returning `fallback` when unset or malformed.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a double env var, returning `fallback` when unset or malformed.
double env_double(const char* name, double fallback);

/// Read a string env var, returning `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace nocw
