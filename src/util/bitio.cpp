#include "util/bitio.hpp"

#include <cstring>

namespace nocw {

void BitWriter::write(std::uint64_t value, unsigned bits) {
  if (bits == 0 || bits > 64) throw std::invalid_argument("bits must be 1..64");
  if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t byte = bit_count_ / 8;
    const unsigned off = bit_count_ % 8;
    if (byte >= buf_.size()) buf_.push_back(0);
    if ((value >> i) & 1ULL) buf_[byte] |= static_cast<std::uint8_t>(1u << off);
    ++bit_count_;
  }
}

void BitWriter::write_float(float value) {
  std::uint32_t raw;
  std::memcpy(&raw, &value, sizeof(raw));
  write(raw, 32);
}

std::uint64_t BitReader::read(unsigned bits) {
  if (bits == 0 || bits > 64) throw std::invalid_argument("bits must be 1..64");
  if (bits > bits_left()) throw std::out_of_range("BitReader exhausted");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned off = pos_ % 8;
    if ((bytes_[byte] >> off) & 1u) value |= std::uint64_t{1} << i;
    ++pos_;
  }
  return value;
}

float BitReader::read_float() {
  const auto raw = static_cast<std::uint32_t>(read(32));
  float value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

}  // namespace nocw
