#include "util/stats.hpp"

#include <cstring>

#include "util/check.hpp"

namespace nocw {

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    NOCW_DCHECK(sorted[i - 1] <= sorted[i]);
  }
  p = std::clamp(p, 0.0, 100.0);
  // All-equal samples: return the value itself, bit-exact for every p. The
  // interpolated path would also land here numerically, but making it a
  // short-circuit keeps exports byte-stable even for mixed ±0.0 samples.
  if (sorted.front() == sorted.back()) return sorted.front();
  // Linear interpolation between closest ranks over [0, n-1].
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  if (frac == 0.0) return sorted[lo];  // exact rank: no interpolation noise
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> samples, double p) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

TailPercentiles tail_percentiles_sorted(std::span<const double> sorted) {
  TailPercentiles t;
  t.count = sorted.size();
  if (sorted.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    t.mean = t.p50 = t.p90 = t.p99 = t.p999 = t.max = nan;
    return t;
  }
  double acc = 0.0;
  for (double v : sorted) acc += v;
  t.mean = acc / static_cast<double>(sorted.size());
  t.p50 = percentile_sorted(sorted, 50.0);
  t.p90 = percentile_sorted(sorted, 90.0);
  t.p99 = percentile_sorted(sorted, 99.0);
  t.p999 = percentile_sorted(sorted, 99.9);
  t.max = sorted.back();
  return t;
}

TailPercentiles tail_percentiles(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return tail_percentiles_sorted(sorted);
}

double mean_squared_error(std::span<const float> a, std::span<const float> b) {
  NOCW_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double value_range(std::span<const float> x) {
  if (x.empty()) return 0.0;
  float lo = x[0];
  float hi = x[0];
  for (float v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return static_cast<double>(hi) - static_cast<double>(lo);
}

double shannon_entropy_hist(std::span<const std::uint64_t> histogram) {
  std::uint64_t total = 0;
  for (auto c : histogram) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (auto c : histogram) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double shannon_entropy_bytes(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint64_t> hist(256, 0);
  for (auto b : bytes) ++hist[b];
  return shannon_entropy_hist(hist);
}

std::vector<std::uint64_t> byte_histogram(std::span<const float> values) {
  std::vector<std::uint64_t> hist(256, 0);
  for (float v : values) {
    std::uint8_t raw[sizeof(float)];
    std::memcpy(raw, &v, sizeof(float));
    for (auto b : raw) ++hist[b];
  }
  return hist;
}

}  // namespace nocw
