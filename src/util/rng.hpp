// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic behaviour in the library flows through SplitMix64 (seeding)
// and Xoshiro256pp (bulk generation) so that every experiment is exactly
// reproducible from a single 64-bit seed. <random> engines are deliberately
// avoided: their streams are not guaranteed stable across standard library
// implementations, which would make the recorded experiment outputs
// machine-dependent.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace nocw {

/// SplitMix64: tiny generator used to expand a user seed into state for
/// larger generators. Passes BigCrush when used directly; here it only seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Fast, high-quality 64-bit generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9eb1c5a5ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution exactly uniform after the
    // rejection step below.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Box-Muller, cached second value).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace nocw
