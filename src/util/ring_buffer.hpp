// Fixed-capacity FIFO used for router input buffers and PE queues.
//
// Capacity is a runtime constant (buffer depth is an architectural
// parameter); storage is a single contiguous allocation and push/pop are
// branch-light, since the NoC simulator performs millions of these per run.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace nocw {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    NOCW_CHECK_GT(capacity, std::size_t{0});
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return buf_.size() - size_;
  }

  /// Push one element; caller must check !full() first.
  void push(T value) {
    NOCW_DCHECK(!full());
    buf_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % buf_.size();
    ++size_;
  }

  /// Front element; caller must check !empty() first.
  [[nodiscard]] const T& front() const {
    NOCW_DCHECK(!empty());
    return buf_[head_];
  }

  [[nodiscard]] T& front() {
    NOCW_DCHECK(!empty());
    return buf_[head_];
  }

  /// Pop and return the front element; caller must check !empty() first.
  T pop() {
    NOCW_DCHECK(!empty());
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return value;
  }

  void clear() noexcept {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nocw
