// Deterministic fork-join thread pool for the GEMM/conv hot path and the
// evaluation sweeps.
//
// Design goals, in order:
//  1. Bit-exact results independent of thread count. parallel_for splits
//     [begin, end) into *static* grain-sized chunks whose boundaries depend
//     only on (begin, end, grain) — never on the number of threads — so a
//     caller that keeps floating-point reduction order fixed per chunk (or
//     writes disjoint outputs per index) gets identical results with 1, 2 or
//     N threads. Chunks are handed to workers dynamically for load balance;
//     which thread runs a chunk can never affect the math.
//  2. Zero overhead when parallelism is off. With one thread (NOCW_THREADS=1
//     or a single-core host) parallel_for degenerates to one direct call of
//     the body on the full range — no locks, no allocation, no wakeups.
//  3. Safe composition. A parallel_for issued from inside a worker (nested
//     parallelism) runs inline on the calling lane instead of deadlocking on
//     the pool; exceptions thrown by the body are captured and rethrown on
//     the submitting thread after the region completes.
//
// The process-wide pool is a lazy singleton sized by the NOCW_THREADS
// environment variable (default: hardware concurrency). Benches and tests
// may resize it between regions with set_global_threads().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nocw {

class ThreadPool {
 public:
  /// Chunk body: half-open index range plus the executing lane in
  /// [0, size()). The lane is stable for the duration of one chunk and is
  /// meant for per-thread scratch (replica models, buffers) — results must
  /// never depend on it.
  using ChunkFn = std::function<void(std::size_t begin, std::size_t end,
                                     unsigned lane)>;

  /// `threads` counts execution lanes including the submitting thread, so
  /// ThreadPool(4) spawns 3 workers. 0 is clamped to 1 (fully serial).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (submitting thread + workers); >= 1.
  [[nodiscard]] unsigned size() const noexcept { return lanes_; }

  /// Run `fn` over [begin, end) in chunks of exactly `grain` indices (the
  /// final chunk may be short). Blocks until every chunk finished. The first
  /// exception thrown by any chunk is rethrown here. Serial fast path: with
  /// one lane, inside a worker, or when the range fits one chunk, the body
  /// runs inline as fn(begin, end, current_lane).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const ChunkFn& fn);

  /// True while the calling thread executes inside a parallel_for region
  /// (worker lane or the submitting thread running chunks). Used by nested
  /// code to pick serial paths.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// Lane of the calling thread (0 outside any region).
  [[nodiscard]] static unsigned current_lane() noexcept;

 private:
  struct Job;

  void worker_main(unsigned lane);
  static void run_chunks(Job& job, unsigned lane);

  unsigned lanes_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;          ///< active job, guarded by mu_
  std::uint64_t job_seq_ = 0;   ///< bumped per job so workers run each once
  bool stop_ = false;
  std::mutex submit_mu_;        ///< serializes concurrent top-level submits
};

/// Process-wide pool, created on first use. Size: NOCW_THREADS when set (>= 1),
/// otherwise std::thread::hardware_concurrency().
ThreadPool& global_pool();

/// Recreate the global pool with `threads` lanes. Intended for benches and
/// tests between parallel regions; not safe concurrently with running work.
void set_global_threads(unsigned threads);

/// Convenience: global_pool().size() without forcing the include of <thread>.
unsigned global_thread_count();

/// Deterministic per-task seed derived from (seed, task index): the basis for
/// thread-count-independent RNG streams in parallel sweeps.
std::uint64_t task_seed(std::uint64_t seed, std::uint64_t task_index) noexcept;

}  // namespace nocw
