// Zero-overhead strong quantity types for the repo's physical dimensions.
//
// The paper's two headline observables — inference latency in cycles and
// energy in joules (Figs. 9/10, Table III) — used to travel the tree as bare
// std::uint64_t and double fields, where a cycles↔joules or pJ↔J mix-up
// compiles silently. Every quantity that reaches an exported figure now
// carries its dimension in the type:
//
//   Cycles     exact cycle counts (uint64; add/sub overflow-checked)
//   FracCycles analytic / window-scaled cycle estimates (double)
//   Joules     energy as exported (double)
//   Picojoules per-event energies from the back-annotation tables (double)
//   Flits      exact flit counts (uint64; overflow-checked)
//   Bits       exact bit counts (uint64; checked bits↔words conversion)
//   Words      link-width words (uint64)
//   Seconds    wall/leakage-integration time (double)
//   Watts      power (double); Milliwatts for the per-block leakage tables
//
// plus derived rate types (JoulesPerFlit, FlitsPerCycle) produced by
// dividing quantities of different dimensions.
//
// Rules, enforced at compile time:
//   * construction is explicit — no accidental double -> Joules;
//   * + and - only combine identical quantities (Cycles + Joules does not
//     compile; tests/compile_fail proves it and stays red);
//   * same-dimension division yields a plain double (a ratio), cross-
//     dimension division a typed rate;
//   * unit changes (pJ -> J, mW -> W, bits -> words) are named conversion
//     functions, never implicit scaling.
//
// Rules, enforced at run time through NOCW_CHECK (always on, one predictable
// compare per operation on integer quantities):
//   * uint64 add/sub never wraps (a silently wrapped cycle counter corrupts
//     every downstream energy figure);
//   * checked casts (FracCycles::round, scaling) reject negatives, NaNs and
//     out-of-range magnitudes.
//
// The types are trivially-copyable single-word wrappers; every operation is
// inline arithmetic (bench/ext_engine_speed gates the no-regression claim).
// Conversion factors are applied in exactly the order the pre-typed code
// used, so all exported figures stay bit-identical.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <type_traits>

#include "util/check.hpp"

namespace nocw::units {

// ---------------------------------------------------------------------------
// Closed unit vocabulary (shared with obs::Registry and tools/lint.py /
// tools/nocw_analyze.py via units_vocab.inc).
// ---------------------------------------------------------------------------

#define NOCW_UNIT(u) #u,
inline constexpr std::string_view kUnitVocab[] = {
#include "util/units_vocab.inc"
};
#undef NOCW_UNIT

inline constexpr std::size_t kUnitVocabSize =
    sizeof(kUnitVocab) / sizeof(kUnitVocab[0]);

/// Compile-time (and runtime) membership test against the closed vocabulary.
[[nodiscard]] constexpr bool vocab_has(std::string_view unit) noexcept {
  for (const std::string_view u : kUnitVocab) {
    if (u == unit) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Dimension tags. `registry_unit` names the closed-vocabulary unit used when
// a quantity of this dimension is published through the typed obs::Registry
// overloads; dimensions that must never be exported directly (picojoules,
// milliwatts — export would be off by the scale factor) leave it empty, which
// the typed overloads reject at compile time.
// ---------------------------------------------------------------------------

struct CycleDim {
  static constexpr std::string_view registry_unit = "cycles";
};
struct JouleDim {
  static constexpr std::string_view registry_unit = "joules";
};
struct PicojouleDim {
  static constexpr std::string_view registry_unit = "";  // export as Joules
};
struct FlitDim {
  static constexpr std::string_view registry_unit = "flits";
};
struct BitDim {
  static constexpr std::string_view registry_unit = "bits";
};
struct WordDim {
  static constexpr std::string_view registry_unit = "";  // width-dependent
};
struct SecondDim {
  static constexpr std::string_view registry_unit = "seconds";
};
struct WattDim {
  static constexpr std::string_view registry_unit = "watts";
};
struct MilliwattDim {
  static constexpr std::string_view registry_unit = "";  // export as Watts
};

/// Dimension of a derived rate Num/Den (e.g. joules per flit). Rates carry
/// no registry unit; publish the numerator and denominator instead.
template <class Num, class Den>
struct RateDim {
  static constexpr std::string_view registry_unit = "";
};

namespace detail {

template <class Rep>
constexpr Rep checked_add(Rep a, Rep b) {
  if constexpr (std::is_unsigned_v<Rep>) {
    NOCW_CHECK_LE(b, std::numeric_limits<Rep>::max() - a);
  }
  return static_cast<Rep>(a + b);
}

template <class Rep>
constexpr Rep checked_sub(Rep a, Rep b) {
  if constexpr (std::is_unsigned_v<Rep>) {
    NOCW_CHECK_GE(a, b);
  }
  return static_cast<Rep>(a - b);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Quantity: one value of one dimension.
// ---------------------------------------------------------------------------

template <class Dim, class Rep>
class Quantity {
  static_assert(std::is_arithmetic_v<Rep>);

 public:
  using dim = Dim;
  using rep = Rep;

  constexpr Quantity() noexcept = default;
  explicit constexpr Quantity(Rep v) noexcept : v_(v) {}

  /// The raw magnitude, for serialization and for interop with code that has
  /// not been retrofitted. Arithmetic between quantities should use the
  /// typed operators, not value().
  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }
  /// The magnitude as double (formatting / analytic-math convenience).
  [[nodiscard]] constexpr double dvalue() const noexcept {
    return static_cast<double>(v_);
  }

  // --- same-dimension, same-representation arithmetic ---
  constexpr Quantity& operator+=(Quantity o) {
    v_ = detail::checked_add(v_, o.v_);
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ = detail::checked_sub(v_, o.v_);
    return *this;
  }
  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return a += b;
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return a -= b;
  }

  /// Exact counters support ++ (the cycle engines tick them).
  template <class R = Rep,
            class = std::enable_if_t<std::is_integral_v<R>>>
  constexpr Quantity& operator++() {
    return *this += Quantity{static_cast<Rep>(1)};
  }

  // --- dimensionless scaling ---
  constexpr Quantity& operator*=(Rep s) noexcept {
    v_ = static_cast<Rep>(v_ * s);
    return *this;
  }
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, Rep s) noexcept {
    return Quantity{static_cast<Rep>(a.v_ * s)};
  }
  [[nodiscard]] friend constexpr Quantity operator*(Rep s, Quantity a) noexcept {
    return Quantity{static_cast<Rep>(s * a.v_)};
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, Rep s) {
    if constexpr (std::is_integral_v<Rep>) {
      NOCW_CHECK_NE(s, static_cast<Rep>(0));
    }
    return Quantity{static_cast<Rep>(a.v_ / s)};
  }

  /// Same-dimension division is a pure ratio.
  [[nodiscard]] friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return static_cast<double>(a.v_) / static_cast<double>(b.v_);
  }

  // --- comparisons (same dimension only) ---
  [[nodiscard]] friend constexpr bool operator==(Quantity a, Quantity b) noexcept {
    return a.v_ == b.v_;
  }
  [[nodiscard]] friend constexpr bool operator!=(Quantity a, Quantity b) noexcept {
    return a.v_ != b.v_;
  }
  [[nodiscard]] friend constexpr bool operator<(Quantity a, Quantity b) noexcept {
    return a.v_ < b.v_;
  }
  [[nodiscard]] friend constexpr bool operator<=(Quantity a, Quantity b) noexcept {
    return a.v_ <= b.v_;
  }
  [[nodiscard]] friend constexpr bool operator>(Quantity a, Quantity b) noexcept {
    return a.v_ > b.v_;
  }
  [[nodiscard]] friend constexpr bool operator>=(Quantity a, Quantity b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  Rep v_{};
};

/// Cross-dimension division produces a typed rate (double-valued).
template <class DimA, class RepA, class DimB, class RepB>
[[nodiscard]] constexpr Quantity<RateDim<DimA, DimB>, double> operator/(
    Quantity<DimA, RepA> a, Quantity<DimB, RepB> b) noexcept {
  return Quantity<RateDim<DimA, DimB>, double>{
      static_cast<double>(a.value()) / static_cast<double>(b.value())};
}

/// rate(Num/Den) * Den recovers the numerator dimension.
template <class Num, class Den, class RepB>
[[nodiscard]] constexpr Quantity<Num, double> operator*(
    Quantity<RateDim<Num, Den>, double> rate, Quantity<Den, RepB> den) noexcept {
  return Quantity<Num, double>{rate.value() * static_cast<double>(den.value())};
}
template <class Num, class Den, class RepB>
[[nodiscard]] constexpr Quantity<Num, double> operator*(
    Quantity<Den, RepB> den, Quantity<RateDim<Num, Den>, double> rate) noexcept {
  return rate * den;
}

// ---------------------------------------------------------------------------
// The repo's quantities.
// ---------------------------------------------------------------------------

using Cycles = Quantity<CycleDim, std::uint64_t>;
using FracCycles = Quantity<CycleDim, double>;
using Joules = Quantity<JouleDim, double>;
using Picojoules = Quantity<PicojouleDim, double>;
using Flits = Quantity<FlitDim, std::uint64_t>;
using Bits = Quantity<BitDim, std::uint64_t>;
using Words = Quantity<WordDim, std::uint64_t>;
using Seconds = Quantity<SecondDim, double>;
using Watts = Quantity<WattDim, double>;
using Milliwatts = Quantity<MilliwattDim, double>;

using JoulesPerFlit = Quantity<RateDim<JouleDim, FlitDim>, double>;
using FlitsPerCycle = Quantity<RateDim<FlitDim, CycleDim>, double>;
using CyclesPerFlit = Quantity<RateDim<CycleDim, FlitDim>, double>;

// The counter structs overlay these on what used to be bare uint64/double
// fields; layout tripwires elsewhere (noc_stats_bridge) rely on that.
static_assert(sizeof(Cycles) == sizeof(std::uint64_t) &&
                  std::is_trivially_copyable_v<Cycles>,
              "Cycles must stay a zero-overhead uint64 wrapper");
static_assert(sizeof(Joules) == sizeof(double) &&
                  std::is_trivially_copyable_v<Joules>,
              "Joules must stay a zero-overhead double wrapper");

// ---------------------------------------------------------------------------
// Checked conversions. Each applies its factor in exactly the order the
// pre-typed code did, so retrofitted call sites stay bit-identical.
// ---------------------------------------------------------------------------

inline constexpr double kPicoPerUnit = 1e12;

/// pJ -> J (the energy model's export step).
[[nodiscard]] constexpr Joules to_joules(Picojoules pj) noexcept {
  return Joules{pj.value() * 1e-12};
}
/// J -> pJ (table calibration / round-trip tests).
[[nodiscard]] constexpr Picojoules to_picojoules(Joules j) noexcept {
  return Picojoules{j.value() * 1e12};
}
/// mW -> W (leakage tables integrate W * s).
[[nodiscard]] constexpr Watts to_watts(Milliwatts mw) noexcept {
  return Watts{mw.value() * 1e-3};
}
/// Power integrated over time is energy.
[[nodiscard]] constexpr Joules operator*(Watts w, Seconds s) noexcept {
  return Joules{w.value() * s.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds s, Watts w) noexcept {
  return w * s;
}

/// bits -> link-width words, rounding up; word_bits must be positive.
[[nodiscard]] constexpr Words to_words(Bits bits, std::uint64_t word_bits) {
  NOCW_CHECK_GT(word_bits, std::uint64_t{0});
  return Words{(bits.value() + word_bits - 1) / word_bits};
}
/// words -> bits, overflow-checked.
[[nodiscard]] constexpr Bits to_bits(Words words, std::uint64_t word_bits) {
  NOCW_CHECK_GT(word_bits, std::uint64_t{0});
  if (words.value() != 0) {
    NOCW_CHECK_LE(word_bits,
                  std::numeric_limits<std::uint64_t>::max() / words.value());
  }
  return Bits{words.value() * word_bits};
}

/// Exact count -> analytic estimate (always representable).
[[nodiscard]] constexpr FracCycles to_frac(Cycles c) noexcept {
  return FracCycles{static_cast<double>(c.value())};
}

/// Analytic estimate -> exact count: llround, rejecting NaN, negatives and
/// magnitudes llround cannot represent (a cycle estimate that large is
/// always a bug).
[[nodiscard]] inline Cycles round_cycles(FracCycles c) {
  const double v = c.value();
  NOCW_CHECK(std::isfinite(v));
  NOCW_CHECK_GE(v, 0.0);
  NOCW_CHECK_LT(v, 9.2233720368547758e18);  // 2^63
  return Cycles{static_cast<std::uint64_t>(std::llround(v))};
}

/// Cycle count at a clock -> seconds; factor order matches the pre-typed
/// `cycles / (clock_ghz * 1e9)` expression bit-for-bit.
[[nodiscard]] constexpr Seconds seconds_at(FracCycles cycles,
                                           double clock_ghz) {
  NOCW_CHECK_GT(clock_ghz, 0.0);
  return Seconds{cycles.value() / (clock_ghz * 1e9)};
}

/// One flit per link-width word: the NoC's unit equivalence (a word on a
/// link is exactly one flit). Kept explicit so scatter/gather accounting
/// states the identity instead of silently reusing a number.
[[nodiscard]] constexpr Flits flits_of(Words words) noexcept {
  return Flits{words.value()};
}

}  // namespace nocw::units
