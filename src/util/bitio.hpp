// Bit-granular serialization used by the compressed-weights storage format.
//
// The codec stores ⟨m, q, len⟩ records with configurable field widths, so the
// writer/reader operate on arbitrary bit counts (1..64) rather than whole
// bytes. Bits are packed LSB-first within each byte, matching how a hardware
// deserializer would shift them out of a 64-bit NoC flit.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace nocw {

class BitWriter {
 public:
  /// Append the low `bits` bits of `value` (1..64).
  void write(std::uint64_t value, unsigned bits);

  /// Append a float as its 32 raw bits.
  void write_float(float value);

  /// Total number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Finished byte stream (last byte zero-padded).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  /// Read `bits` bits (1..64), LSB-first. Throws std::out_of_range past end.
  std::uint64_t read(unsigned bits);

  float read_float();

  [[nodiscard]] std::size_t bit_pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t bits_left() const noexcept {
    return bytes_.size() * 8 - pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace nocw
