#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/env.hpp"

namespace nocw {

namespace {

// Region state of the calling thread. Workers set these while executing
// chunks; the submitting thread sets them while it participates. Nested
// parallel_for calls observe tl_in_region and run inline on tl_lane.
thread_local bool tl_in_region = false;
thread_local unsigned tl_lane = 0;

}  // namespace

struct ThreadPool::Job {
  const ChunkFn* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<unsigned> pending_lanes{0};
  std::exception_ptr error;
  std::mutex error_mu;
};

ThreadPool::ThreadPool(unsigned threads) : lanes_(std::max(threads, 1U)) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_in_region; }

unsigned ThreadPool::current_lane() noexcept { return tl_lane; }

void ThreadPool::run_chunks(Job& job, unsigned lane) {
  tl_in_region = true;
  tl_lane = lane;
  for (;;) {
    const std::size_t idx = job.next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= job.chunk_count) break;
    const std::size_t b = job.begin + idx * job.grain;
    const std::size_t e = std::min(b + job.grain, job.end);
    try {
      (*job.fn)(b, e, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
  }
  tl_in_region = false;
  tl_lane = 0;
}

void ThreadPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && job_seq_ != seen);
      });
      if (stop_) return;
      job = job_;
      seen = job_seq_;
    }
    run_chunks(*job, lane);
    if (job->pending_lanes.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last lane out signals the submitter. Notify under mu_ so the wait
      // predicate below cannot miss the transition.
      std::lock_guard<std::mutex> lk(mu_);
      done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const ChunkFn& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  // Serial fast path: one lane, nested call, or a range that fits a single
  // chunk. One direct call, no synchronization. Correct because chunk
  // boundaries are forbidden (by contract) from affecting results.
  if (lanes_ <= 1 || tl_in_region || end - begin <= grain) {
    fn(begin, end, tl_lane);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.chunk_count = (end - begin + grain - 1) / grain;
  job.pending_lanes.store(lanes_, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  wake_.notify_all();

  run_chunks(job, /*lane=*/0);

  if (job.pending_lanes.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [&] {
      return job.pending_lanes.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

unsigned default_thread_count() {
  // min_value 0: a negative NOCW_THREADS warns once and falls back instead
  // of silently meaning "auto".
  const std::int64_t requested = env_int("NOCW_THREADS", 0, 0);
  if (requested > 0) {
    return static_cast<unsigned>(std::min<std::int64_t>(requested, 512));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool& global_pool() {
  ThreadPool* p = g_pool_ptr.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(default_thread_count());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

void set_global_threads(unsigned threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins old workers before the replacement spins up
  g_pool = std::make_unique<ThreadPool>(std::max(threads, 1U));
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

unsigned global_thread_count() { return global_pool().size(); }

std::uint64_t task_seed(std::uint64_t seed, std::uint64_t task_index) noexcept {
  // SplitMix64 finalizer over a golden-ratio stride: adjacent task indices
  // land in uncorrelated streams, and the mapping is pure (thread-count and
  // schedule independent).
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace nocw
