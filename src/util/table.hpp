// Console table / CSV emission used by every bench binary.
//
// Each reproduction bench prints the paper's table rows as an aligned ASCII
// table and mirrors them to a CSV file next to the binary, so results can be
// diffed or re-plotted without re-running the simulation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nocw {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (headers + rows, RFC-4180 quoting).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_fixed(double v, int precision);
std::string fmt_sci(double v, int precision);
std::string fmt_pct(double fraction, int precision = 0);  // 0.57 -> "57%"

}  // namespace nocw
