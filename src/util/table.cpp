#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nocw {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "");
      out << cells[c];
      out << std::string(width[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = headers_.size() ? (headers_.size() - 1) * 2 : 0;
  for (auto w : width) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace nocw
