// Streaming statistics and small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace nocw {

/// Single-pass accumulator for mean/variance/min/max (Welford's algorithm).
/// Numerically stable for the long event streams produced by the NoC
/// simulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of `sorted` (ascending), p in [0, 100], linear interpolation
/// between closest ranks (numpy's default). Edge behaviour the p50/p95/p99
/// reports rely on: empty input -> quiet NaN, a single sample -> that sample
/// for every p, all-equal samples -> that value; p <= 0 -> min, p >= 100 ->
/// max. Precondition: `sorted` is ascending (checked in debug builds).
double percentile_sorted(std::span<const double> sorted, double p);

/// As percentile_sorted, but copies and sorts internally. Prefer the sorted
/// form when extracting several percentiles from one sample set.
double percentile(std::span<const double> samples, double p);

/// The serving layer's tail summary: p50/p90/p99/p99.9 plus mean/max, all
/// from one sort. Every field follows percentile_sorted's determinism
/// contract (empty -> quiet NaN everywhere except count, single sample ->
/// that sample for every p, all-equal -> that value, exact integer ranks
/// short-circuit without interpolation). p99.9 needs >= 1001 samples before
/// it stops degenerating to the max — callers report it anyway; the
/// interpolation is still deterministic, just max-dominated.
struct TailPercentiles {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

/// Tail summary of `sorted` (ascending; checked in debug builds).
TailPercentiles tail_percentiles_sorted(std::span<const double> sorted);

/// As tail_percentiles_sorted, but copies and sorts internally.
TailPercentiles tail_percentiles(std::span<const double> samples);

/// Mean squared error between two equally sized sequences.
double mean_squared_error(std::span<const float> a, std::span<const float> b);

/// max(x) - min(x); 0 for empty input.
double value_range(std::span<const float> x);

/// Shannon entropy in bits/symbol of the byte histogram of `bytes`.
double shannon_entropy_bytes(std::span<const std::uint8_t> bytes);

/// Shannon entropy in bits/symbol of an arbitrary integer histogram.
double shannon_entropy_hist(std::span<const std::uint64_t> histogram);

/// Histogram of the raw bytes of a float stream (the paper's Fig. 3 measures
/// the entropy of serialized weights).
std::vector<std::uint64_t> byte_histogram(std::span<const float> values);

}  // namespace nocw
