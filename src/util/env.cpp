#include "util/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>

namespace nocw {

namespace {

/// Warn at most once per variable name for the process lifetime, so a knob
/// read in a hot loop (the thread pool reads NOCW_THREADS lazily) does not
/// spam stderr.
void warn_once(const char* name, const char* value, const char* why,
               const char* fallback_repr) {
  static std::set<std::string> warned;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr,
               "nocw: ignoring %s=\"%s\" (%s); using default %s\n",
               name, value, why, fallback_repr);
}

}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  return env_int(name, fallback, std::numeric_limits<std::int64_t>::min());
}

std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  char fb[32];
  std::snprintf(fb, sizeof(fb), "%lld", static_cast<long long>(fallback));
  if (end == v || *end != '\0' || errno == ERANGE) {
    warn_once(name, v, "not an integer", fb);
    return fallback;
  }
  if (parsed < min_value) {
    warn_once(name, v, "below the minimum for this knob", fb);
    return fallback;
  }
  return parsed;
}

double env_double(const char* name, double fallback) {
  return env_double(name, fallback, -std::numeric_limits<double>::infinity());
}

double env_double(const char* name, double fallback, double min_value) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  char fb[48];
  std::snprintf(fb, sizeof(fb), "%g", fallback);
  if (end == v || *end != '\0' || std::isnan(parsed)) {
    warn_once(name, v, "not a number", fb);
    return fallback;
  }
  if (parsed < min_value) {
    warn_once(name, v, "below the minimum for this knob", fb);
    return fallback;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

}  // namespace nocw
