// Contract-checking macros for simulator invariants.
//
// The cycle-accurate counters feed the back-annotated energy model, so a
// silent counter drift or credit underflow corrupts every downstream figure.
// NOCW_CHECK* are therefore *always on*, in every build type: they guard
// cold, per-batch invariants (flit conservation, credit ranges, unit sanity)
// where the cost is negligible next to the cost of a wrong answer.
// NOCW_DCHECK* compile away under NDEBUG and belong on hot per-element paths
// (FIFO push/pop, tensor indexing) where the old `assert`s lived.
//
// A failed check throws nocw::CheckError with the expression text and, for
// the binary forms, both operand values:
//
//   NOCW_CHECK_GE(credits, 0);   // "credits >= 0 (-1 vs 0)"
//
// CheckError derives from std::logic_error, so callers that used to throw or
// catch std::logic_error keep working unchanged.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nocw {

/// Thrown when a NOCW_CHECK* invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace check_detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& operands) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!operands.empty()) os << " (" << operands << ')';
  throw CheckError(os.str());
}

template <typename A, typename B>
std::string describe(const A& a, const B& b) {
  std::ostringstream os;
  os << a << " vs " << b;
  return os.str();
}

}  // namespace check_detail
}  // namespace nocw

/// Always-on invariant check; throws nocw::CheckError when `cond` is false.
#define NOCW_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::nocw::check_detail::fail(__FILE__, __LINE__, #cond, std::string{}); \
    }                                                                      \
  } while (false)

// Binary comparison form: evaluates each operand exactly once and captures
// both values in the failure message.
#define NOCW_CHECK_OP_(op, a, b)                                           \
  do {                                                                     \
    const auto& nocw_check_a_ = (a);                                       \
    const auto& nocw_check_b_ = (b);                                       \
    if (!(nocw_check_a_ op nocw_check_b_)) {                               \
      ::nocw::check_detail::fail(                                          \
          __FILE__, __LINE__, #a " " #op " " #b,                           \
          ::nocw::check_detail::describe(nocw_check_a_, nocw_check_b_));   \
    }                                                                      \
  } while (false)

#define NOCW_CHECK_EQ(a, b) NOCW_CHECK_OP_(==, a, b)
#define NOCW_CHECK_NE(a, b) NOCW_CHECK_OP_(!=, a, b)
#define NOCW_CHECK_LT(a, b) NOCW_CHECK_OP_(<, a, b)
#define NOCW_CHECK_LE(a, b) NOCW_CHECK_OP_(<=, a, b)
#define NOCW_CHECK_GT(a, b) NOCW_CHECK_OP_(>, a, b)
#define NOCW_CHECK_GE(a, b) NOCW_CHECK_OP_(>=, a, b)

// Debug-only variants for hot paths. Under NDEBUG the condition is placed in
// an unevaluated sizeof so operands still count as used (no -Wunused under
// -Werror) but no code is generated.
#ifndef NDEBUG
#define NOCW_DCHECK(cond) NOCW_CHECK(cond)
#define NOCW_DCHECK_EQ(a, b) NOCW_CHECK_EQ(a, b)
#define NOCW_DCHECK_NE(a, b) NOCW_CHECK_NE(a, b)
#define NOCW_DCHECK_LT(a, b) NOCW_CHECK_LT(a, b)
#define NOCW_DCHECK_LE(a, b) NOCW_CHECK_LE(a, b)
#define NOCW_DCHECK_GT(a, b) NOCW_CHECK_GT(a, b)
#define NOCW_DCHECK_GE(a, b) NOCW_CHECK_GE(a, b)
#else
#define NOCW_DCHECK(cond) static_cast<void>(sizeof(!(cond)))
#define NOCW_DCHECK_EQ(a, b) static_cast<void>(sizeof(!((a) == (b))))
#define NOCW_DCHECK_NE(a, b) static_cast<void>(sizeof(!((a) != (b))))
#define NOCW_DCHECK_LT(a, b) static_cast<void>(sizeof(!((a) < (b))))
#define NOCW_DCHECK_LE(a, b) static_cast<void>(sizeof(!((a) <= (b))))
#define NOCW_DCHECK_GT(a, b) static_cast<void>(sizeof(!((a) > (b))))
#define NOCW_DCHECK_GE(a, b) static_cast<void>(sizeof(!((a) >= (b))))
#endif
